//! The multi-run simulation driver.
//!
//! Each run samples one network and one workload trace from the scenario's
//! seed, then replays the *same* trace through every approach (paired
//! comparison, as the paper's common evaluation setup implies). Costs are
//! the provider's bill per slot `Σ a_ij · X_ij` under the 100-th percentile
//! scheme, averaged over slots and then summarized across runs with 95 %
//! confidence intervals — exactly the quantity on the paper's y-axes.

use crate::scenario::Scenario;
use crate::stats::ConfidenceInterval;
use crate::workload::Trace;
use postcard_core::{
    DirectScheduler, FlowLpScheduler, GreedyScheduler, OnlineController, PostcardConfig,
    PostcardError, PostcardScheduler, Scheduler, TwoPhaseScheduler,
};

/// The approaches the simulator can compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Store-and-forward cost minimization (the paper's contribution).
    Postcard,
    /// Postcard with the relay-storage ablation (source pacing only).
    PostcardNoRelayStorage,
    /// Storage-free flow LP in the exact cost model (Sec. II-B, optimal).
    FlowLp,
    /// The paper's two-phase flow decomposition.
    FlowTwoPhase,
    /// Cheapest-available-path greedy.
    FlowGreedy,
    /// Direct-link trickle (no strategy).
    Direct,
}

impl Approach {
    /// Display name matching the scheduler's.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::Postcard => "postcard",
            Approach::PostcardNoRelayStorage => "postcard-no-relay-storage",
            Approach::FlowLp => "flow-lp",
            Approach::FlowTwoPhase => "flow-two-phase",
            Approach::FlowGreedy => "flow-greedy",
            Approach::Direct => "direct",
        }
    }

    /// Builds a fresh scheduler.
    ///
    /// The LP-backed approaches warm-start each slot from the previous
    /// slot's optimal basis — purely a speed knob (stale bases fall back to
    /// cold solves, and per-slot optima are unique in objective value), so
    /// figure reproductions are unaffected.
    pub fn scheduler(&self) -> Box<dyn Scheduler> {
        match self {
            Approach::Postcard => Box::new(PostcardScheduler::with_config(PostcardConfig {
                warm_start: true,
                ..Default::default()
            })),
            Approach::PostcardNoRelayStorage => {
                Box::new(PostcardScheduler::with_config(PostcardConfig {
                    allow_relay_storage: false,
                    warm_start: true,
                    ..Default::default()
                }))
            }
            Approach::FlowLp => Box::new(FlowLpScheduler::warm_starting()),
            Approach::FlowTwoPhase => Box::new(TwoPhaseScheduler),
            Approach::FlowGreedy => Box::new(GreedyScheduler),
            Approach::Direct => Box::new(DirectScheduler),
        }
    }

    /// The two approaches the paper's figures compare.
    pub fn paper_pair() -> Vec<Approach> {
        vec![Approach::Postcard, Approach::FlowLp]
    }
}

impl std::fmt::Display for Approach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for [`Approach::from_str`] naming the unknown approach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseApproachError(pub String);

impl std::fmt::Display for ParseApproachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown approach `{}`", self.0)
    }
}

impl std::error::Error for ParseApproachError {}

impl std::str::FromStr for Approach {
    type Err = ParseApproachError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "postcard" => Approach::Postcard,
            "postcard-no-relay-storage" => Approach::PostcardNoRelayStorage,
            "flow-lp" => Approach::FlowLp,
            "flow-two-phase" => Approach::FlowTwoPhase,
            "flow-greedy" => Approach::FlowGreedy,
            "direct" => Approach::Direct,
            other => return Err(ParseApproachError(other.to_string())),
        })
    }
}

/// Metrics of one (approach, run) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Which approach.
    pub approach: Approach,
    /// The run index (also the seed offset).
    pub run: usize,
    /// Slots simulated.
    pub num_slots: u64,
    /// Bill per slot averaged over all slots — the paper's y-axis.
    pub avg_cost_per_slot: f64,
    /// Bill per slot after the final slot.
    pub final_cost_per_slot: f64,
    /// Files accepted.
    pub accepted: usize,
    /// Files rejected by admission control.
    pub rejected: usize,
    /// Volume accepted (GB).
    pub accepted_volume: f64,
    /// Volume rejected (GB).
    pub rejected_volume: f64,
    /// The bill per slot under the 95-th percentile scheme (what a real ISP
    /// would predominantly charge; the optimizer targets the 100-th).
    pub p95_cost_per_slot: f64,
}

impl RunResult {
    /// Throughput-normalized cost: the final bill per slot divided by the
    /// carried GB per slot — a `$ / GB` figure that stays comparable when
    /// approaches reject different amounts of traffic (`NaN` if nothing was
    /// carried).
    pub fn cost_per_gb(&self) -> f64 {
        self.final_cost_per_slot / (self.accepted_volume / self.num_slots.max(1) as f64)
    }
}

/// All runs of one approach on one scenario, with summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproachSummary {
    /// Which approach.
    pub approach: Approach,
    /// Per-run results.
    pub runs: Vec<RunResult>,
    /// Mean ± 95 % CI of [`RunResult::avg_cost_per_slot`] across runs.
    pub avg_cost: ConfidenceInterval,
    /// Mean ± 95 % CI of [`RunResult::final_cost_per_slot`] across runs.
    pub final_cost: ConfidenceInterval,
    /// Mean ± 95 % CI of [`RunResult::cost_per_gb`] across runs.
    pub cost_per_gb: ConfidenceInterval,
    /// Mean ± 95 % CI of [`RunResult::p95_cost_per_slot`] across runs.
    pub p95_cost: ConfidenceInterval,
    /// Fraction of files rejected, pooled over runs.
    pub rejection_rate: f64,
}

/// Replays one trace through one approach.
///
/// # Errors
///
/// Propagates scheduler failures that are not plain infeasibility (which is
/// handled by per-file admission inside the controller).
pub fn run_trace(
    network: &postcard_net::Network,
    trace: &Trace,
    num_slots: u64,
    approach: Approach,
    run: usize,
) -> Result<RunResult, PostcardError> {
    let mut ctl = OnlineController::new(network.clone(), approach.scheduler());
    let mut cost_sum = 0.0;
    for slot in 0..num_slots {
        let batch = trace.batch(slot);
        let report = ctl.step(slot, &batch)?;
        cost_sum += report.cost_per_slot;
    }
    let (accepted, rejected) = ctl.admission_counts();
    let (accepted_volume, rejected_volume) = ctl.admission_volumes();
    let p95_cost_per_slot = ctl.ledger().cost_per_slot_with(
        network,
        postcard_net::PercentileScheme::P95,
        ctl.ledger().horizon() as usize,
    );
    Ok(RunResult {
        approach,
        run,
        num_slots,
        avg_cost_per_slot: cost_sum / num_slots.max(1) as f64,
        final_cost_per_slot: ctl.cost_per_slot(),
        accepted,
        rejected,
        accepted_volume,
        rejected_volume,
        p95_cost_per_slot,
    })
}

/// Runs a scenario: `num_runs` paired repetitions of every approach.
///
/// Seeds are derived deterministically from `base_seed` and the run index,
/// and within one run every approach sees the identical network and trace.
///
/// # Errors
///
/// Propagates the first non-infeasibility scheduler failure.
pub fn run_scenario(
    scenario: &Scenario,
    approaches: &[Approach],
    base_seed: u64,
) -> Result<Vec<ApproachSummary>, PostcardError> {
    let mut per_approach: Vec<Vec<RunResult>> = vec![Vec::new(); approaches.len()];
    for run in 0..scenario.num_runs {
        let seed = base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(run as u64);
        let network = scenario.network(seed);
        let mut workload = scenario.workload(seed ^ 0xDEAD_BEEF);
        let trace = Trace::generate(&mut workload, scenario.num_slots);
        for (i, &a) in approaches.iter().enumerate() {
            per_approach[i].push(run_trace(&network, &trace, scenario.num_slots, a, run)?);
        }
    }
    Ok(approaches
        .iter()
        .zip(per_approach)
        .map(|(&approach, runs)| summarize(approach, runs))
        .collect())
}

pub(crate) fn summarize(approach: Approach, runs: Vec<RunResult>) -> ApproachSummary {
    let avg: Vec<f64> = runs.iter().map(|r| r.avg_cost_per_slot).collect();
    let fin: Vec<f64> = runs.iter().map(|r| r.final_cost_per_slot).collect();
    let cpg: Vec<f64> = runs.iter().map(RunResult::cost_per_gb).filter(|c| c.is_finite()).collect();
    let p95: Vec<f64> = runs.iter().map(|r| r.p95_cost_per_slot).collect();
    let total: usize = runs.iter().map(|r| r.accepted + r.rejected).sum();
    let rej: usize = runs.iter().map(|r| r.rejected).sum();
    ApproachSummary {
        approach,
        avg_cost: ConfidenceInterval::of(&avg),
        final_cost: ConfidenceInterval::of(&fin),
        cost_per_gb: ConfidenceInterval::of(&cpg),
        p95_cost: ConfidenceInterval::of(&p95),
        rejection_rate: if total == 0 { 0.0 } else { rej as f64 / total as f64 },
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scenario_runs_all_approaches() {
        let s = Scenario::fig4().tiny();
        let approaches = [
            Approach::Postcard,
            Approach::FlowLp,
            Approach::FlowTwoPhase,
            Approach::FlowGreedy,
            Approach::Direct,
        ];
        let summaries = run_scenario(&s, &approaches, 1).unwrap();
        assert_eq!(summaries.len(), 5);
        for s in &summaries {
            assert_eq!(s.runs.len(), 2);
            assert!(s.avg_cost.mean > 0.0, "{}: zero cost?", s.approach);
            assert!(s.avg_cost.mean.is_finite());
        }
    }

    #[test]
    fn paired_runs_are_deterministic() {
        let s = Scenario::fig4().tiny();
        let a = run_scenario(&s, &[Approach::FlowLp], 5).unwrap();
        let b = run_scenario(&s, &[Approach::FlowLp], 5).unwrap();
        assert_eq!(a, b);
        let c = run_scenario(&s, &[Approach::FlowLp], 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn postcard_never_loses_to_direct_on_average() {
        // Postcard's feasible set contains every direct plan, so with paired
        // traces its committed bill can only be lower or equal per run.
        let s = Scenario::fig4().tiny();
        let summaries = run_scenario(&s, &[Approach::Postcard, Approach::Direct], 3).unwrap();
        let postcard = &summaries[0];
        let direct = &summaries[1];
        for (p, d) in postcard.runs.iter().zip(&direct.runs) {
            // Direct may also reject more files (making its bill smaller for
            // unfair reasons); only compare when both served everything.
            if p.rejected == 0 && d.rejected == 0 {
                assert!(
                    p.avg_cost_per_slot <= d.avg_cost_per_slot + 1e-6,
                    "run {}: postcard {} > direct {}",
                    p.run,
                    p.avg_cost_per_slot,
                    d.avg_cost_per_slot
                );
            }
        }
    }

    #[test]
    fn approach_names_unique_and_display() {
        assert_eq!(Approach::Postcard.to_string(), "postcard");
        assert_eq!(Approach::paper_pair().len(), 2);
    }

    #[test]
    fn p95_bill_never_exceeds_p100() {
        let s = Scenario::fig4().tiny();
        let out = run_scenario(&s, &[Approach::FlowLp], 9).unwrap();
        for r in &out[0].runs {
            assert!(
                r.p95_cost_per_slot <= r.final_cost_per_slot + 1e-9,
                "p95 {} > p100 {}",
                r.p95_cost_per_slot,
                r.final_cost_per_slot
            );
        }
        assert!(out[0].p95_cost.mean <= out[0].final_cost.mean + 1e-9);
    }

    #[test]
    fn approach_from_str_round_trips() {
        for a in [
            Approach::Postcard,
            Approach::PostcardNoRelayStorage,
            Approach::FlowLp,
            Approach::FlowTwoPhase,
            Approach::FlowGreedy,
            Approach::Direct,
        ] {
            assert_eq!(a.name().parse::<Approach>().unwrap(), a);
        }
        let err = "quantum".parse::<Approach>().unwrap_err();
        assert!(err.to_string().contains("quantum"));
    }
}
