//! Replaying simulator traces through the fault-tolerant service runtime.
//!
//! [`run_trace`](crate::run_trace) drives a bare [`postcard_core`]
//! controller; [`run_trace_service`] drives the same trace through
//! [`postcard_runtime::Runtime`] — fallback chain, admission queue, fault
//! plan, metrics, checkpointing and all. With an all-clear fault plan and
//! the single Postcard tier the two paths produce *identical* numbers
//! (asserted by this module's tests), which is what makes the service
//! runtime a drop-in for experiments that also want crash-safety or fault
//! injection.

use crate::runner::RunResult;
use crate::workload::Trace;
use postcard_net::Network;
use postcard_runtime::{
    ArrivalSchedule, FaultPlan, MetricsRegistry, Runtime, RuntimeConfig, RuntimeError,
};

/// Converts a simulator trace into the runtime's arrival schedule (same
/// requests, same order).
pub fn trace_to_arrivals(trace: &Trace) -> ArrivalSchedule {
    ArrivalSchedule::from_requests(trace.requests().to_vec())
}

/// One trace replayed through the service runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRunResult {
    /// The cost/admission metrics, in the same shape as a plain
    /// [`crate::run_trace`] result (the `approach` field reports the
    /// runtime's *first* tier; fallback activity lives in `metrics`).
    pub result: RunResult,
    /// The runtime's metrics registry (tier choices, fallback activations,
    /// solve latency, queue drops, …).
    pub metrics: MetricsRegistry,
}

/// Replays one trace through a [`Runtime`] with the given fault plan.
///
/// # Errors
///
/// Propagates [`RuntimeError`]s (snapshot I/O, invalid config, or a hard
/// scheduler failure even the degraded path could not absorb).
pub fn run_trace_service(
    network: &Network,
    trace: &Trace,
    num_slots: u64,
    faults: FaultPlan,
    config: RuntimeConfig,
    run: usize,
) -> Result<ServiceRunResult, RuntimeError> {
    let approach = config.tiers[0]
        .name()
        .parse()
        .map_err(|e: crate::runner::ParseApproachError| RuntimeError::Config(e.to_string()))?;
    let mut rt =
        Runtime::new(network.clone(), trace_to_arrivals(trace), faults, num_slots, config)?;
    rt.run_to_end()?;

    let ctl = rt.controller();
    let (accepted, rejected) = ctl.admission_counts();
    let (accepted_volume, rejected_volume) = ctl.admission_volumes();
    let cost_sum: f64 = ctl.cost_history().iter().sum();
    let slots = rt.num_slots();
    let p95_cost_per_slot = ctl.ledger().cost_per_slot_with(
        ctl.network(),
        postcard_net::PercentileScheme::P95,
        ctl.ledger().horizon() as usize,
    );
    let result = RunResult {
        approach,
        run,
        num_slots: slots,
        avg_cost_per_slot: cost_sum / slots.max(1) as f64,
        final_cost_per_slot: ctl.cost_per_slot(),
        accepted,
        rejected,
        accepted_volume,
        rejected_volume,
        p95_cost_per_slot,
    };
    Ok(ServiceRunResult { result, metrics: rt.metrics().clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_trace, Approach};
    use crate::scenario::Scenario;
    use crate::workload::Trace;
    use postcard_runtime::TierKind;

    fn paired_instance() -> (Network, Trace, u64) {
        let s = Scenario::fig4().tiny();
        let network = s.network(42);
        let mut workload = s.workload(42 ^ 0xDEAD_BEEF);
        let trace = Trace::generate(&mut workload, s.num_slots);
        // The runtime extends the horizon so late releases keep their full
        // deadline windows; drive the plain controller over the same span
        // so the two paths stay number-for-number comparable.
        let horizon = trace_to_arrivals(&trace).horizon_slots().max(s.num_slots);
        (network, trace, horizon)
    }

    #[test]
    fn service_path_matches_plain_controller_exactly() {
        let (network, trace, num_slots) = paired_instance();
        let plain = run_trace(&network, &trace, num_slots, Approach::Postcard, 0).unwrap();
        let config = RuntimeConfig { tiers: vec![TierKind::Postcard], ..Default::default() };
        let service =
            run_trace_service(&network, &trace, num_slots, FaultPlan::none(), config, 0).unwrap();
        // Same trace, same solver, same ledger arithmetic: every number is
        // bit-identical, not merely close.
        assert_eq!(service.result, plain);
        assert_eq!(service.metrics.counter("fallback_activations"), 0);
    }

    #[test]
    fn full_chain_without_faults_stays_on_postcard() {
        let (network, trace, num_slots) = paired_instance();
        let plain = run_trace(&network, &trace, num_slots, Approach::Postcard, 0).unwrap();
        let service = run_trace_service(
            &network,
            &trace,
            num_slots,
            FaultPlan::none(),
            RuntimeConfig::default(),
            0,
        )
        .unwrap();
        assert_eq!(service.result, plain, "an idle fallback chain must be invisible");
        assert_eq!(service.metrics.counter("tier_chosen_flow-lp"), 0);
    }

    #[test]
    fn zero_capacity_outage_is_applied_and_service_keeps_running() {
        // A dead link (capacity 0) mid-run is a real outage, not a skipped
        // fault: the degradation applies and every slot still completes
        // (files that needed the link are rejected or routed around, never
        // crash the service).
        let (network, trace, num_slots) = paired_instance();
        let link = network.links().next().unwrap();
        let faults = FaultPlan::none().degrade(1, link.from, link.to, 0.0);
        let service =
            run_trace_service(&network, &trace, num_slots, faults, RuntimeConfig::default(), 0)
                .unwrap();
        assert_eq!(service.metrics.counter("degradations_applied"), 1);
        assert_eq!(service.metrics.counter("degradations_skipped"), 0);
        assert_eq!(service.metrics.counter("slots_total"), num_slots);
    }

    #[test]
    fn forced_timeouts_change_tier_but_never_miss_slots() {
        let (network, trace, num_slots) = paired_instance();
        let faults = FaultPlan::none().force_timeout(0, TierKind::Postcard);
        let service =
            run_trace_service(&network, &trace, num_slots, faults, RuntimeConfig::default(), 0)
                .unwrap();
        assert_eq!(service.metrics.counter("slots_total"), num_slots);
        assert_eq!(service.metrics.counter("fallback_activations"), 1);
        assert!(service.metrics.counter("tier_chosen_flow-lp") >= 1);
    }
}
