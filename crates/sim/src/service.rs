//! Replaying simulator traces through the fault-tolerant service runtime.
//!
//! [`run_trace`](crate::run_trace) drives a bare [`postcard_core`]
//! controller; [`run_trace_service`] drives the same trace through
//! [`postcard_runtime::Runtime`] — fallback chain, admission queue, fault
//! plan, metrics, checkpointing and all. With an all-clear fault plan and
//! the single Postcard tier the two paths produce *identical* numbers
//! (asserted by this module's tests), which is what makes the service
//! runtime a drop-in for experiments that also want crash-safety or fault
//! injection.

use crate::runner::{summarize, Approach, ApproachSummary, RunResult};
use crate::scenario::Scenario;
use crate::workload::Trace;
use postcard_net::Network;
use postcard_runtime::{
    ArrivalSchedule, FaultPlan, MetricsRegistry, Runtime, RuntimeConfig, RuntimeError, TierKind,
};

/// Converts a simulator trace into the runtime's arrival schedule (same
/// requests, same order).
pub fn trace_to_arrivals(trace: &Trace) -> ArrivalSchedule {
    ArrivalSchedule::from_requests(trace.requests().to_vec())
}

/// One trace replayed through the service runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRunResult {
    /// The cost/admission metrics, in the same shape as a plain
    /// [`crate::run_trace`] result (the `approach` field reports the
    /// runtime's *first* tier; fallback activity lives in `metrics`).
    pub result: RunResult,
    /// The runtime's metrics registry (tier choices, fallback activations,
    /// solve latency, queue drops, …).
    pub metrics: MetricsRegistry,
}

/// Replays one trace through a [`Runtime`] with the given fault plan.
///
/// # Errors
///
/// Propagates [`RuntimeError`]s (snapshot I/O, invalid config, or a hard
/// scheduler failure even the degraded path could not absorb).
pub fn run_trace_service(
    network: &Network,
    trace: &Trace,
    num_slots: u64,
    faults: FaultPlan,
    config: RuntimeConfig,
    run: usize,
) -> Result<ServiceRunResult, RuntimeError> {
    let approach = config.tiers[0]
        .name()
        .parse()
        .map_err(|e: crate::runner::ParseApproachError| RuntimeError::Config(e.to_string()))?;
    let mut rt =
        Runtime::new(network.clone(), trace_to_arrivals(trace), faults, num_slots, config)?;
    rt.run_to_end()?;

    let ctl = rt.controller();
    let (accepted, rejected) = ctl.admission_counts();
    let (accepted_volume, rejected_volume) = ctl.admission_volumes();
    let cost_sum: f64 = ctl.cost_history().iter().sum();
    let slots = rt.num_slots();
    let p95_cost_per_slot = ctl.ledger().cost_per_slot_with(
        ctl.network(),
        postcard_net::PercentileScheme::P95,
        ctl.ledger().horizon() as usize,
    );
    let result = RunResult {
        approach,
        run,
        num_slots: slots,
        avg_cost_per_slot: cost_sum / slots.max(1) as f64,
        final_cost_per_slot: ctl.cost_per_slot(),
        accepted,
        rejected,
        accepted_volume,
        rejected_volume,
        p95_cost_per_slot,
    };
    Ok(ServiceRunResult { result, metrics: rt.metrics().clone() })
}

/// The service tier a simulator approach maps onto.
///
/// # Errors
///
/// Approaches with no fallback-chain tier (two-phase, direct, the
/// no-relay-storage ablation) are rejected with a config error.
fn service_tier(approach: Approach) -> Result<TierKind, RuntimeError> {
    match approach {
        Approach::Postcard => Ok(TierKind::Postcard),
        Approach::FlowLp => Ok(TierKind::FlowLp),
        Approach::FlowGreedy => Ok(TierKind::Greedy),
        other => Err(RuntimeError::Config(format!(
            "approach `{other}` has no service-runtime tier \
             (pick postcard, flow-lp, or flow-greedy)"
        ))),
    }
}

/// Runs a figure scenario through the crash-safe service runtime: the same
/// seed derivation and paired traces as [`crate::run_scenario`], but every
/// (approach, run) pair replays through a [`Runtime`] built from `template`
/// with that approach as its single tier — fallback chain, admission queue,
/// metrics, and (when `template.shards > 1`) the sharded engine included.
///
/// # Errors
///
/// Rejects approaches without a service tier and propagates runtime
/// failures.
pub fn run_scenario_service(
    scenario: &Scenario,
    approaches: &[Approach],
    base_seed: u64,
    template: &RuntimeConfig,
) -> Result<Vec<ApproachSummary>, RuntimeError> {
    let mut per_approach: Vec<Vec<RunResult>> = vec![Vec::new(); approaches.len()];
    for run in 0..scenario.num_runs {
        let seed = base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(run as u64);
        let network = scenario.network(seed);
        let mut workload = scenario.workload(seed ^ 0xDEAD_BEEF);
        let trace = Trace::generate(&mut workload, scenario.num_slots);
        for (i, &a) in approaches.iter().enumerate() {
            let config = RuntimeConfig { tiers: vec![service_tier(a)?], ..template.clone() };
            let service = run_trace_service(
                &network,
                &trace,
                scenario.num_slots,
                FaultPlan::none(),
                config,
                run,
            )?;
            per_approach[i].push(service.result);
        }
    }
    Ok(approaches
        .iter()
        .zip(per_approach)
        .map(|(&approach, runs)| summarize(approach, runs))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_trace, Approach};
    use crate::scenario::Scenario;
    use crate::workload::Trace;
    use postcard_runtime::TierKind;

    fn paired_instance() -> (Network, Trace, u64) {
        let s = Scenario::fig4().tiny();
        let network = s.network(42);
        let mut workload = s.workload(42 ^ 0xDEAD_BEEF);
        let trace = Trace::generate(&mut workload, s.num_slots);
        // The runtime extends the horizon so late releases keep their full
        // deadline windows; drive the plain controller over the same span
        // so the two paths stay number-for-number comparable.
        let horizon = trace_to_arrivals(&trace).horizon_slots().max(s.num_slots);
        (network, trace, horizon)
    }

    #[test]
    fn service_path_matches_plain_controller_exactly() {
        let (network, trace, num_slots) = paired_instance();
        let plain = run_trace(&network, &trace, num_slots, Approach::Postcard, 0).unwrap();
        let config = RuntimeConfig { tiers: vec![TierKind::Postcard], ..Default::default() };
        let service =
            run_trace_service(&network, &trace, num_slots, FaultPlan::none(), config, 0).unwrap();
        // Same trace, same solver, same ledger arithmetic: every number is
        // bit-identical, not merely close.
        assert_eq!(service.result, plain);
        assert_eq!(service.metrics.counter("fallback_activations"), 0);
    }

    #[test]
    fn full_chain_without_faults_stays_on_postcard() {
        let (network, trace, num_slots) = paired_instance();
        let plain = run_trace(&network, &trace, num_slots, Approach::Postcard, 0).unwrap();
        let service = run_trace_service(
            &network,
            &trace,
            num_slots,
            FaultPlan::none(),
            RuntimeConfig::default(),
            0,
        )
        .unwrap();
        assert_eq!(service.result, plain, "an idle fallback chain must be invisible");
        assert_eq!(service.metrics.counter("tier_chosen_flow-lp"), 0);
    }

    #[test]
    fn zero_capacity_outage_is_applied_and_service_keeps_running() {
        // A dead link (capacity 0) mid-run is a real outage, not a skipped
        // fault: the degradation applies and every slot still completes
        // (files that needed the link are rejected or routed around, never
        // crash the service).
        let (network, trace, num_slots) = paired_instance();
        let link = network.links().next().unwrap();
        let faults = FaultPlan::none().degrade(1, link.from, link.to, 0.0);
        let service =
            run_trace_service(&network, &trace, num_slots, faults, RuntimeConfig::default(), 0)
                .unwrap();
        assert_eq!(service.metrics.counter("degradations_applied"), 1);
        assert_eq!(service.metrics.counter("degradations_skipped"), 0);
        assert_eq!(service.metrics.counter("slots_total"), num_slots);
    }

    #[test]
    fn scenario_service_matches_plain_scenario_run() {
        // The service driver reuses run_scenario's seed derivation, so with
        // the single Postcard tier and no faults every run matches a plain
        // controller replay of the same trace (over the runtime's extended
        // horizon, which keeps late releases' full deadline windows).
        let s = Scenario::fig4().tiny();
        let config = RuntimeConfig { tiers: vec![TierKind::Postcard], ..Default::default() };
        let service = run_scenario_service(&s, &[Approach::Postcard], 3, &config).unwrap();
        assert_eq!(service.len(), 1);
        assert_eq!(service[0].runs.len(), s.num_runs);
        for run in 0..s.num_runs {
            let seed = 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(run as u64);
            let network = s.network(seed);
            let mut workload = s.workload(seed ^ 0xDEAD_BEEF);
            let trace = Trace::generate(&mut workload, s.num_slots);
            let horizon = trace_to_arrivals(&trace).horizon_slots().max(s.num_slots);
            let plain = run_trace(&network, &trace, horizon, Approach::Postcard, run).unwrap();
            assert_eq!(service[0].runs[run], plain, "run {run}");
        }
    }

    #[test]
    fn scenario_service_rejects_tierless_approaches() {
        let s = Scenario::fig4().tiny();
        let err = run_scenario_service(&s, &[Approach::Direct], 1, &RuntimeConfig::default())
            .unwrap_err();
        assert!(err.to_string().contains("no service-runtime tier"), "{err}");
    }

    #[test]
    fn sharded_service_matches_unsharded_on_tenant_disjoint_workloads() {
        // Block-diagonal network, tenant-tagged trace: the joint LP
        // decomposes by cluster, so per-tenant shard solves merged by the
        // reconciler must reproduce the unsharded admissions and bill.
        use crate::tenant::TenantScenario;
        use postcard_runtime::ShardBy;
        let s = TenantScenario::quad();
        let network = s.network(11);
        let trace = s.trace(11 ^ 0xDEAD_BEEF);
        let slots = trace_to_arrivals(&trace).horizon_slots().max(s.num_slots);
        let unsharded = run_trace_service(
            &network,
            &trace,
            slots,
            FaultPlan::none(),
            RuntimeConfig::default(),
            0,
        )
        .unwrap();
        let config =
            RuntimeConfig { shards: s.tenants, shard_by: ShardBy::Tenant, ..Default::default() };
        let sharded =
            run_trace_service(&network, &trace, slots, FaultPlan::none(), config, 0).unwrap();
        let (u, h) = (&unsharded.result, &sharded.result);
        assert_eq!(h.accepted, u.accepted);
        assert_eq!(h.rejected, u.rejected);
        assert!((h.accepted_volume - u.accepted_volume).abs() < 1e-6);
        let rel = (h.final_cost_per_slot - u.final_cost_per_slot).abs()
            / u.final_cost_per_slot.max(1e-12);
        assert!(
            rel < 1e-6,
            "sharded bill {} vs unsharded {}",
            h.final_cost_per_slot,
            u.final_cost_per_slot
        );
        assert_eq!(sharded.metrics.counter("shard_conflicts"), 0);
    }

    #[test]
    fn forced_timeouts_change_tier_but_never_miss_slots() {
        let (network, trace, num_slots) = paired_instance();
        let faults = FaultPlan::none().force_timeout(0, TierKind::Postcard);
        let service =
            run_trace_service(&network, &trace, num_slots, faults, RuntimeConfig::default(), 0)
                .unwrap();
        assert_eq!(service.metrics.counter("slots_total"), num_slots);
        assert_eq!(service.metrics.counter("fallback_activations"), 1);
        assert!(service.metrics.counter("tier_chosen_flow-lp") >= 1);
    }
}
