//! Multi-day diurnal presets for billing-window experiments.
//!
//! The figure scenarios ([`crate::Scenario`]) compare *approaches* under the
//! paper's running-peak bill. This module compares *charging schemes*: the
//! same multi-day workload is served twice — once by a max-charging
//! controller, once by a percentile-aware one (the headroom rung prepended
//! by [`postcard_runtime::Runtime`] under a `Percentile` config) — and both
//! ledgers are priced under the **same** 95th-percentile tariff with
//! [`postcard_net::TrafficLedger::total_bill`]. The p95-aware run crams each
//! day's burst into the billing window's free top-5% slots, so its charged
//! percentile stays at the valley level while the max-charging run's burst
//! spread raises it; the bill gap is the whole point of percentile-aware
//! scheduling (the `billing-baseline` bench gates on it).
//!
//! The preset is deliberately diurnal: a flat valley of small transfers all
//! day, one large burst **late in each billing window** (once enough of the
//! window is populated for the percentile baseline to be positive — bursts
//! at the start of a window meet a zero baseline and the headroom rung
//! rightly declines them), a mid-cycle price change, and a maintenance
//! window on the reverse link.

use postcard_net::{ChargingScheme, DcId, FileId, Network, NetworkBuilder, TransferRequest};
use postcard_runtime::{ArrivalSchedule, FaultPlan, Runtime, RuntimeConfig, RuntimeError};

/// A deterministic multi-day valley-plus-burst workload over one link.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalPreset {
    /// Number of simulated days (= billing windows).
    pub days: u64,
    /// Slots per day; also the billing-window length.
    pub slots_per_day: u64,
    /// Link capacity in GB per slot.
    pub capacity_gb: f64,
    /// Initial price per GB of charged volume on the forward link.
    pub price: f64,
    /// Files per daily burst.
    pub burst_files: usize,
    /// Size of each burst file in GB.
    pub burst_size_gb: f64,
    /// Burst release slot within the day. Placed late in the window so the
    /// percentile baseline is positive by the time the burst lands.
    pub burst_release_in_day: u64,
    /// Burst deadline in slots.
    pub burst_deadline: usize,
    /// Mean size of the per-slot valley file in GB. The seed jitters it
    /// per *day*, not per slot: a flat valley within each billing window
    /// keeps every valley slot exactly at the percentile baseline, so the
    /// window's free slots stay available for the burst (per-slot noise
    /// would hand the free slots to the noise peaks instead — a legitimate
    /// decline, but not this preset's story).
    pub valley_size_gb: f64,
    /// Slot of the mid-cycle tariff change (`None` disables it).
    pub reprice_at: Option<u64>,
    /// The new price the mid-cycle change applies.
    pub reprice_to: f64,
    /// The charged percentile (e.g. 95.0).
    pub percentile: f64,
}

impl DiurnalPreset {
    /// The default acceptance preset: three 48-slot days, a 100 GB/slot
    /// link, a 2 GB valley every slot, a daily 8 × 20 GB burst at slot 44
    /// of each day (deadline 4, so it ends exactly at the window boundary),
    /// and a tariff rise in the middle of day two.
    pub fn three_day() -> Self {
        Self {
            days: 3,
            slots_per_day: 48,
            capacity_gb: 100.0,
            price: 1.0,
            burst_files: 8,
            burst_size_gb: 20.0,
            burst_release_in_day: 44,
            burst_deadline: 4,
            valley_size_gb: 2.0,
            reprice_at: Some(72),
            reprice_to: 2.5,
            percentile: 95.0,
        }
    }

    /// Total run length in slots.
    pub fn num_slots(&self) -> u64 {
        self.days * self.slots_per_day
    }

    /// The percentile tariff both runs are billed under.
    pub fn scheme(&self) -> ChargingScheme {
        ChargingScheme::Percentile { q: self.percentile, window_slots: self.slots_per_day as usize }
    }

    /// Two datacenters, one forward link carrying the workload and a
    /// reverse link the maintenance window exercises.
    pub fn network(&self) -> Network {
        NetworkBuilder::new(2)
            .link(DcId(0), DcId(1), self.price, self.capacity_gb)
            .link(DcId(1), DcId(0), self.price, self.capacity_gb)
            .build()
    }

    /// The deterministic arrival schedule for `seed` — the valley sizes are
    /// jittered per day, everything else is fixed by the preset.
    pub fn arrivals(&self, seed: u64) -> ArrivalSchedule {
        let mut requests = Vec::new();
        let mut next_id = 0u64;
        let id = |n: &mut u64| {
            *n += 1;
            FileId(*n)
        };
        let slots = self.num_slots();
        for slot in 0..slots {
            // The valley: one small file per slot, due within its slot, so
            // every slot's committed volume is exactly the valley size and
            // the percentile baseline is flat across the window.
            let day = slot / self.slots_per_day;
            let size = self.valley_size_gb * (0.75 + 0.5 * jitter(seed, day));
            requests.push(TransferRequest::new(id(&mut next_id), DcId(0), DcId(1), size, 1, slot));
        }
        for day in 0..self.days {
            let release = day * self.slots_per_day + self.burst_release_in_day;
            for _ in 0..self.burst_files {
                requests.push(TransferRequest::new(
                    id(&mut next_id),
                    DcId(0),
                    DcId(1),
                    self.burst_size_gb,
                    self.burst_deadline,
                    release,
                ));
            }
        }
        ArrivalSchedule::from_requests(requests)
    }

    /// The fault plan: the mid-cycle tariff change on the forward link and
    /// a half-day maintenance outage on the (idle) reverse link during the
    /// last day.
    pub fn faults(&self) -> FaultPlan {
        let mut plan = FaultPlan::none();
        if let Some(slot) = self.reprice_at {
            plan = plan.reprice(slot, DcId(0), DcId(1), self.reprice_to);
        }
        if self.days >= 2 {
            let start = (self.days - 1) * self.slots_per_day;
            plan = plan.maintain(start, start + self.slots_per_day / 2, DcId(1), DcId(0));
        }
        plan
    }
}

/// A deterministic per-slot jitter in `[0, 1)` (split-mix style; no RNG
/// dependency, so the trace is a pure function of the seed).
fn jitter(seed: u64, slot: u64) -> f64 {
    let mut z = seed ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // postcard-analyze: allow(PA205) — deliberate truncation to the low 53
    // bits for a uniform float in [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Both runs' bills under the preset's percentile tariff.
#[derive(Debug, Clone, PartialEq)]
pub struct BillingComparison {
    /// The tariff both ledgers were priced under.
    pub scheme: ChargingScheme,
    /// Total bill of the max-charging controller's ledger.
    pub max_bill: f64,
    /// Total bill of the percentile-aware controller's ledger.
    pub p95_bill: f64,
    /// Files accepted / rejected by the max-charging run.
    pub max_admissions: (usize, usize),
    /// Files accepted / rejected by the percentile-aware run.
    pub p95_admissions: (usize, usize),
    /// Times the headroom rung declined (no burst budget) and handed the
    /// batch to the LP tiers.
    pub headroom_declined: u64,
}

impl BillingComparison {
    /// `max_bill / p95_bill` (∞ when the p95 bill is zero and the max bill
    /// is not).
    pub fn reduction_factor(&self) -> f64 {
        self.max_bill / self.p95_bill
    }

    /// A small text figure, same spirit as [`crate::report::render_table`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "billing comparison under {} (both ledgers priced identically)\n",
            self.scheme.spec()
        ));
        out.push_str(&format!(
            "  {:<22} {:>12} {:>10} {:>10}\n",
            "controller", "bill", "accepted", "rejected"
        ));
        out.push_str(&format!(
            "  {:<22} {:>12.2} {:>10} {:>10}\n",
            "max-charging", self.max_bill, self.max_admissions.0, self.max_admissions.1
        ));
        out.push_str(&format!(
            "  {:<22} {:>12.2} {:>10} {:>10}\n",
            "p95-aware (headroom)", self.p95_bill, self.p95_admissions.0, self.p95_admissions.1
        ));
        out.push_str(&format!(
            "  verdict: p95-aware pays {:.1}x less ({} headroom decline(s))\n",
            self.reduction_factor(),
            self.headroom_declined
        ));
        out
    }
}

/// Serves the preset twice — max-charging vs percentile-aware — and prices
/// **both** resulting ledgers under the preset's percentile tariff.
///
/// The max-charging run is the paper's controller verbatim (its scheduler
/// minimizes the running peak and never sees the percentile); the
/// percentile-aware run gets the headroom rung. Pricing both final ledgers
/// with the same [`postcard_net::TrafficLedger::total_bill`] call makes the
/// comparison an apples-to-apples tariff evaluation, not two different
/// objectives.
///
/// # Errors
///
/// Propagates [`RuntimeError`]s from either run.
pub fn compare_billing(
    preset: &DiurnalPreset,
    seed: u64,
) -> Result<BillingComparison, RuntimeError> {
    let scheme = preset.scheme();
    let serve = |charging: ChargingScheme| -> Result<(f64, (usize, usize), u64), RuntimeError> {
        let config = RuntimeConfig { charging, ..Default::default() };
        let mut rt = Runtime::new(
            preset.network(),
            preset.arrivals(seed),
            preset.faults(),
            preset.num_slots(),
            config,
        )?;
        rt.run_to_end()?;
        let ctl = rt.controller();
        let bill = ctl.ledger().total_bill(ctl.network(), scheme);
        Ok((bill, ctl.admission_counts(), rt.metrics().counter("headroom_declined")))
    };
    let (max_bill, max_admissions, _) = serve(ChargingScheme::MaxPerSlot)?;
    let (p95_bill, p95_admissions, headroom_declined) = serve(scheme)?;
    Ok(BillingComparison {
        scheme,
        max_bill,
        p95_bill,
        max_admissions,
        p95_admissions,
        headroom_declined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_shape_is_three_days_with_mid_cycle_reprice() {
        let p = DiurnalPreset::three_day();
        assert_eq!(p.num_slots(), 144);
        assert_eq!(p.scheme().window_slots(), 48);
        assert_eq!(p.scheme().free_slots(), 2, "p95 over 48 slots frees 2");
        // The reprice lands strictly inside the run, not on a window edge.
        let at = p.reprice_at.unwrap();
        assert!(at > 0 && at < p.num_slots() && !at.is_multiple_of(p.slots_per_day));
        let faults = p.faults();
        assert_eq!(faults.price_changes.len(), 1);
        assert_eq!(faults.maintenance.len(), 1);
    }

    #[test]
    fn arrivals_are_a_pure_function_of_the_seed() {
        let p = DiurnalPreset::three_day();
        assert_eq!(p.arrivals(7), p.arrivals(7));
        assert_ne!(p.arrivals(7), p.arrivals(8), "seed must matter");
        // Every burst stays inside its own billing window.
        let arrivals = p.arrivals(7);
        for r in arrivals.requests() {
            let window = (r.release_slot / p.slots_per_day) * p.slots_per_day;
            assert!(r.last_slot() < window + p.slots_per_day, "{:?}", r);
        }
    }

    #[test]
    fn p95_aware_run_pays_strictly_less_than_max_charging() {
        // The acceptance gate: same workload, same tariff, and the
        // percentile-aware controller's bill is strictly lower because the
        // daily burst rides in each window's two free slots.
        let cmp = compare_billing(&DiurnalPreset::three_day(), 1).unwrap();
        assert!(
            cmp.p95_bill < cmp.max_bill,
            "p95-aware bill {} must beat max-charging bill {}",
            cmp.p95_bill,
            cmp.max_bill
        );
        // Neither controller gives up admissions to get there.
        assert_eq!(cmp.p95_admissions, cmp.max_admissions);
        assert_eq!(cmp.max_admissions.1, 0, "nothing is rejected at this scale");
        let figure = cmp.render();
        assert!(figure.contains("p95-aware"), "{figure}");
        assert!(figure.contains("pays"), "{figure}");
    }
}
