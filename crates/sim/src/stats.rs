//! Summary statistics: means, sample deviations, and 95 % confidence
//! intervals (Student's t for small samples, matching the paper's error
//! bars over 10 runs).

/// Mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (Bessel-corrected; 0 for fewer than 2 points).
pub fn sample_stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Two-sided 97.5 % Student-t quantile for `df` degrees of freedom (exact
/// table through 30, normal approximation beyond).
fn t_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        _ => 1.96,
    }
}

/// A symmetric confidence interval around a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the 95 % interval.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// 95 % CI of the mean of `xs` (half-width 0 for < 2 points).
    pub fn of(xs: &[f64]) -> Self {
        let m = mean(xs);
        if xs.len() < 2 {
            return Self { mean: m, half_width: 0.0 };
        }
        let se = sample_stddev(xs) / (xs.len() as f64).sqrt();
        Self { mean: m, half_width: t_975(xs.len() - 1) * se }
    }

    /// Lower bound.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// `true` when `other`'s interval overlaps this one.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.low() <= other.high() && other.low() <= self.high()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.half_width)
    }
}

/// Five-number-ish summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of points.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `xs` (all-zero for an empty slice).
    pub fn of(xs: &[f64]) -> Self {
        Self {
            n: xs.len(),
            mean: mean(xs),
            stddev: sample_stddev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min).min(f64::INFINITY),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max).max(f64::NEG_INFINITY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((sample_stddev(&xs) - 2.138).abs() < 1e-3);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sample_stddev(&[3.0]), 0.0);
        let ci = ConfidenceInterval::of(&[3.0]);
        assert_eq!(ci.mean, 3.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn ci_shrinks_with_more_data() {
        let small = ConfidenceInterval::of(&[1.0, 2.0, 3.0]);
        let xs: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64).collect();
        let large = ConfidenceInterval::of(&xs);
        assert!((small.mean - 2.0).abs() < 1e-12);
        assert!((large.mean - 2.0).abs() < 1e-12);
        assert!(large.half_width < small.half_width);
    }

    #[test]
    fn ci_overlap() {
        let a = ConfidenceInterval { mean: 1.0, half_width: 0.5 };
        let b = ConfidenceInterval { mean: 1.8, half_width: 0.4 };
        let c = ConfidenceInterval { mean: 3.0, half_width: 0.2 };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn t_quantiles_monotone() {
        assert!(t_975(1) > t_975(5));
        assert!(t_975(5) > t_975(30));
        assert!((t_975(9) - 2.262).abs() < 1e-9); // the paper's n=10 runs
        assert_eq!(t_975(1000), 1.96);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 5.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        let ci = ConfidenceInterval { mean: 12.345, half_width: 0.678 };
        assert_eq!(ci.to_string(), "12.35 ± 0.68");
    }
}
