//! Solver results.

use crate::expr::Variable;
use crate::model::ConstraintId;
use crate::simplex::Basis;

/// Termination status of a solve.
#[must_use = "a solve status must be inspected: non-optimal outcomes carry no usable values"]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Status::Optimal => write!(f, "optimal"),
            Status::Infeasible => write!(f, "infeasible"),
            Status::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// The outcome of solving a [`crate::Model`].
///
/// For non-[`Status::Optimal`] outcomes the primal/dual values are all zero
/// and the objective is `f64::NAN` (infeasible) or signed infinity
/// (unbounded); always check [`Solution::status`] first.
#[must_use = "dropping a Solution discards the solve outcome, including infeasibility"]
#[derive(Debug, Clone)]
pub struct Solution {
    status: Status,
    objective: f64,
    values: Vec<f64>,
    duals: Vec<f64>,
    iterations: usize,
    dual_iterations: usize,
    basis: Option<Basis>,
}

impl Solution {
    pub(crate) fn new(
        status: Status,
        objective: f64,
        values: Vec<f64>,
        duals: Vec<f64>,
        iterations: usize,
        dual_iterations: usize,
        basis: Option<Basis>,
    ) -> Self {
        Self { status, objective, values, duals, iterations, dual_iterations, basis }
    }

    /// Termination status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// `true` when the solve found an optimum.
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }

    /// Objective value in the model's own sense (i.e. already un-negated for
    /// maximization problems).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of one variable.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to the solved model.
    pub fn value(&self, var: Variable) -> f64 {
        self.values[var.index()]
    }

    /// All primal values, indexed by variable index.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Dual value of one constraint.
    ///
    /// The sign convention: duals are reported so that for a *minimization*
    /// problem, a binding `≤` constraint has a non-negative dual and the
    /// strong-duality identity checked in [`crate::validate`] holds; for a
    /// maximization problem duals are negated accordingly.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to the solved model.
    pub fn dual(&self, c: ConstraintId) -> f64 {
        self.duals[c.index()]
    }

    /// All dual values, indexed by constraint id.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// Number of simplex iterations across both phases.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of dual-simplex pivots (a subset of [`Solution::iterations`]):
    /// nonzero exactly when a warm basis left primal-infeasible by a
    /// right-hand-side change was re-optimized in place by the dual simplex
    /// instead of a cold two-phase restart.
    pub fn dual_iterations(&self) -> usize {
        self.dual_iterations
    }

    /// The optimal basis, for warm-starting a later solve of a same-shaped
    /// model via [`crate::Model::solve_warm`]. `None` unless the solve
    /// terminated [`Status::Optimal`].
    pub fn basis(&self) -> Option<&Basis> {
        self.basis.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display() {
        assert_eq!(Status::Optimal.to_string(), "optimal");
        assert_eq!(Status::Infeasible.to_string(), "infeasible");
        assert_eq!(Status::Unbounded.to_string(), "unbounded");
    }

    #[test]
    fn accessors() {
        let s = Solution::new(Status::Optimal, 3.5, vec![1.0, 2.0], vec![0.5], 7, 2, None);
        assert!(s.is_optimal());
        assert_eq!(s.objective(), 3.5);
        assert_eq!(s.values(), &[1.0, 2.0]);
        assert_eq!(s.duals(), &[0.5]);
        assert_eq!(s.iterations(), 7);
        assert_eq!(s.dual_iterations(), 2);
        assert!(s.basis().is_none());
    }
}
