//! Two-phase sparse revised simplex with LU + eta-file basis updates.
//!
//! The implementation follows the classic scheme:
//!
//! * **Phase 1** starts from an all-slack/artificial basis and minimizes the
//!   sum of artificial variables; a positive optimum means the problem is
//!   infeasible. Artificials left in the basis at level zero are pivoted out
//!   where possible; where a row is linearly dependent the artificial is kept
//!   (its row of `B⁻¹A` is identically zero for all real columns, so it can
//!   never become positive again — see the proof sketch in the code).
//! * **Phase 2** continues from the feasible basis with the true costs,
//!   artificial columns barred from entering.
//!
//! Pricing is Dantzig (most negative reduced cost) with an automatic switch
//! to Bland's rule after a run of degenerate pivots, which guarantees
//! termination. The basis is held as a sparse LU factorization
//! ([`crate::factor`]) plus a product-form eta file ([`crate::eta`]): pivot
//! columns and duals come from `ftran`/`btran` against the CSC constraint
//! matrix directly — nothing is densified — and a pivot appends one sparse
//! eta vector instead of eliminating an m×m inverse. The factorization is
//! rebuilt (and the eta file cleared) every
//! [`SimplexOptions::refactor_every`] pivots to bound numerical drift.
//!
//! Solves can be **warm-started** from the [`Basis`] exported by a previous
//! optimal solve: phase 1 is skipped entirely when the supplied basis is
//! still nonsingular and primal feasible for the new right-hand side, which
//! is the common case for the near-identical LPs produced by consecutive
//! Postcard slots.

use crate::error::LpError;
use crate::eta::EtaFile;
use crate::factor::BasisFactor;
use crate::solution::Status;
use crate::standard::StandardForm;

/// Reusable solver allocations that survive across solves.
///
/// Every simplex iteration needs a handful of dense row-length scratch
/// vectors (duals, pivot columns, rows of `B⁻¹`), refactorization gathers
/// the basis columns into a per-row jagged buffer, and the product-form
/// eta file grows to `refactor_every` update vectors between rebuilds.
/// Allocating those per solve is invisible on one LP but dominates a slot
/// loop that solves thousands of near-identical LPs; a `SolverWorkspace`
/// owns them instead, so a persistent caller (one workspace per scheduler)
/// pays the allocations once and every later solve runs in steady-state
/// memory. A fresh workspace per solve is always correct — just slower.
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    /// Stack of row-length dense scratch vectors, recycled LIFO.
    dense_pool: Vec<Vec<f64>>,
    /// Basis-column gather buffer reused by refactorization.
    factor_cols: Vec<Vec<(usize, f64)>>,
    /// Product-form eta file, cleared (capacity kept) between solves.
    etas: EtaFile,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use and are kept after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zeroed length-`m` scratch vector from the pool.
    fn grab(&mut self, m: usize) -> Vec<f64> {
        let mut v = self.dense_pool.pop().unwrap_or_default();
        v.clear();
        v.resize(m, 0.0);
        v
    }

    /// Returns a scratch vector to the pool for reuse.
    fn stash(&mut self, v: Vec<f64>) {
        self.dense_pool.push(v);
    }
}

/// Tuning knobs for [`SimplexSolver`].
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on total pivots across both phases.
    pub max_iterations: usize,
    /// Reduced-cost threshold for a column to be considered improving.
    pub pricing_tol: f64,
    /// Minimum |pivot element| accepted in the ratio test.
    pub pivot_tol: f64,
    /// Phase-1 objective above this value ⇒ infeasible.
    pub feas_tol: f64,
    /// Refactorize the basis (and clear the eta file) every this many
    /// pivots. Smaller values bound both numerical drift and the length of
    /// the eta file replayed on every `ftran`/`btran`.
    pub refactor_every: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_after: usize,
    /// Eta-file entries with magnitude at or below this are dropped to keep
    /// update vectors sparse.
    pub eta_drop_tol: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200_000,
            pricing_tol: 1e-7,
            pivot_tol: 1e-9,
            feas_tol: 1e-6,
            refactor_every: 64,
            bland_after: 64,
            eta_drop_tol: 1e-12,
        }
    }
}

/// A simplex basis over standard-form columns, exported from an optimal
/// solve and usable to warm-start a later solve of a same-shaped problem
/// via [`crate::Model::solve_warm`].
///
/// Entries `< num_cols()` name structural/slack standard-form columns;
/// entries `>= num_cols()` encode an artificial covering row
/// `entry - num_cols()` (left behind by a linearly dependent row). The
/// encoding is canonical — it does not depend on solver-internal column
/// ordering — so a basis can be replayed against any standard form with the
/// same dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Basic column per row position, in the canonical encoding above.
    cols: Vec<usize>,
    /// Standard-form column count of the originating problem.
    n_cols: usize,
}

impl Basis {
    /// Number of rows (= basic columns) of the originating problem.
    pub fn num_rows(&self) -> usize {
        self.cols.len()
    }

    /// Number of standard-form columns of the originating problem.
    pub fn num_cols(&self) -> usize {
        self.n_cols
    }
}

/// Raw solution over the standard-form columns (before mapping back to the
/// originating model).
#[must_use = "dropping a RawSolution discards the solve outcome"]
#[derive(Debug, Clone)]
pub struct RawSolution {
    /// Termination status.
    pub status: Status,
    /// Primal values per standard-form column (structural + slack).
    pub x: Vec<f64>,
    /// Row duals `y = c_Bᵀ·B⁻¹` of the standard form.
    pub y: Vec<f64>,
    /// Standard-form (minimization) objective `c·x`. Kept for diagnostics;
    /// the model-space objective is recomputed during solution mapping.
    #[allow(dead_code)]
    pub objective: f64,
    /// Total pivots performed.
    pub iterations: usize,
    /// Pivots performed by the dual simplex (a subset of `iterations`).
    pub dual_iterations: usize,
    /// The optimal basis, for warm-starting a subsequent solve. `None`
    /// unless the solve terminated optimal.
    pub basis: Option<Basis>,
}

/// The revised simplex engine.
///
/// Usually used indirectly through [`crate::Model::solve`]; exposed so that
/// benchmarks and tests can drive it with custom options.
#[derive(Debug, Clone, Default)]
pub struct SimplexSolver {
    options: SimplexOptions,
}

impl SimplexSolver {
    /// Creates a solver with the given options.
    pub fn new(options: SimplexOptions) -> Self {
        Self { options }
    }

    /// Solves a standard-form problem, warm-starting from `warm` when one
    /// is supplied and still usable.
    ///
    /// A warm basis left primal-infeasible by a right-hand-side change is
    /// re-optimized by the dual simplex (it stays dual feasible, so the
    /// resolve is usually a handful of pivots). The basis is rejected —
    /// silently falling back to the cold two-phase path — when its
    /// dimensions do not match, its factorization is singular, or the dual
    /// simplex stalls. A singular basis encountered *during* the
    /// warm-started iteration also falls back to a full cold solve.
    ///
    /// # Errors
    ///
    /// Same contract as [`SimplexSolver::solve`].
    pub(crate) fn solve_warm(
        &self,
        sf: &StandardForm,
        warm: Option<&Basis>,
        ws: &mut SolverWorkspace,
    ) -> Result<RawSolution, LpError> {
        if sf.trivially_infeasible {
            return Ok(RawSolution {
                status: Status::Infeasible,
                x: vec![0.0; sf.n_cols],
                y: vec![0.0; sf.m],
                objective: f64::NAN,
                iterations: 0,
                dual_iterations: 0,
                basis: None,
            });
        }
        if let Some(basis) = warm {
            if let Some(mut state) = State::warm(sf, &self.options, basis, ws) {
                match state.finish_phase2() {
                    Err(LpError::SingularBasis) => {
                        // The inherited basis degraded mid-flight; restart
                        // cold (which carries its own singularity retry).
                    }
                    other => return other,
                }
            }
        }
        self.solve_cold(sf, ws)
    }

    fn solve_cold(
        &self,
        sf: &StandardForm,
        ws: &mut SolverWorkspace,
    ) -> Result<RawSolution, LpError> {
        let mut state = State::new(sf, &self.options, ws);
        match state.run() {
            Err(LpError::SingularBasis) => {
                // A run of near-zero ratio-test pivots can assemble an
                // ill-conditioned basis that refactorization rejects. Retry
                // once from scratch under Bland's rule with a stricter pivot
                // floor — a different (and provably terminating) pivot path.
                let opts = SimplexOptions {
                    pivot_tol: self.options.pivot_tol.max(1e-7),
                    bland_after: 0,
                    refactor_every: self.options.refactor_every.min(32),
                    ..self.options.clone()
                };
                let mut retry = State::new(sf, &opts, ws);
                retry.pricing = Pricing::Bland;
                retry.run()
            }
            other => other,
        }
    }
}

/// Which pivot the entering-variable search should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pricing {
    Dantzig,
    Bland,
}

struct State<'a> {
    sf: &'a StandardForm,
    opts: &'a SimplexOptions,
    /// Reusable scratch allocations (dense vectors, factor gather buffers,
    /// and the eta file live here so they survive across solves).
    ws: &'a mut SolverWorkspace,
    /// Number of real (structural + slack) columns.
    n: usize,
    m: usize,
    /// Artificial column `n + k` covers row `art_row[k]`.
    art_row: Vec<usize>,
    /// Basis column per row (may be ≥ n for artificials).
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Sparse LU of the basis as of the last refactorization.
    factor: BasisFactor,
    /// Current basic values `x_B = B⁻¹ b`.
    xb: Vec<f64>,
    /// Phase-dependent costs for all columns (real + artificial).
    cost: Vec<f64>,
    iterations: usize,
    dual_iterations: usize,
    degenerate_run: usize,
    pricing: Pricing,
    /// Artificial columns are barred from entering in phase 2.
    allow_artificials: bool,
}

impl<'a> State<'a> {
    fn new(sf: &'a StandardForm, opts: &'a SimplexOptions, ws: &'a mut SolverWorkspace) -> Self {
        let n = sf.n_cols;
        let m = sf.m;
        let mut basis = Vec::with_capacity(m);
        let mut in_basis = vec![false; n];
        let mut art_row = Vec::new();
        // Initial basis: slack column where it has coefficient +1 (then its
        // basis column is exactly e_r and x_B = b ≥ 0 is feasible); otherwise
        // an artificial.
        for r in 0..m {
            match sf.slack_of_row[r] {
                Some(scol) if sf.slack_coeff[r] > 0.0 => {
                    basis.push(scol);
                    in_basis[scol] = true;
                }
                _ => {
                    let art_col = n + art_row.len();
                    art_row.push(r);
                    basis.push(art_col);
                }
            }
        }
        let n_art = art_row.len();
        in_basis.extend(std::iter::repeat_n(false, n_art));
        for &bcol in &basis {
            if bcol >= n {
                in_basis[bcol] = true;
            }
        }
        let xb = sf.b.clone();
        ws.etas.clear();
        State {
            sf,
            opts,
            ws,
            n,
            m,
            art_row,
            basis,
            in_basis,
            factor: BasisFactor::identity(m),
            xb,
            cost: vec![0.0; n + n_art],
            iterations: 0,
            dual_iterations: 0,
            degenerate_run: 0,
            pricing: Pricing::Dantzig,
            allow_artificials: true,
        }
    }

    /// Builds a phase-2-ready state from a previously exported basis, or
    /// `None` when the basis cannot seed this problem (dimension mismatch,
    /// duplicate columns, singular factorization, or primal infeasibility
    /// for the new right-hand side).
    fn warm(
        sf: &'a StandardForm,
        opts: &'a SimplexOptions,
        warm: &Basis,
        ws: &'a mut SolverWorkspace,
    ) -> Option<State<'a>> {
        let n = sf.n_cols;
        let m = sf.m;
        if warm.cols.len() != m || warm.n_cols != n {
            return None;
        }
        // Decode the canonical basis: entries ≥ n name an artificial pinned
        // to a specific row (left behind by a linearly dependent row in the
        // exporting solve).
        let mut art_row: Vec<usize> = Vec::new();
        let mut basis: Vec<usize> = Vec::with_capacity(m);
        for &j in &warm.cols {
            if j < n {
                basis.push(j);
            } else {
                let r = j - n;
                if r >= m {
                    return None;
                }
                basis.push(n + art_row.len());
                art_row.push(r);
            }
        }
        let n_art = art_row.len();
        let mut in_basis = vec![false; n + n_art];
        for &j in &basis {
            if in_basis[j] {
                return None;
            }
            in_basis[j] = true;
        }
        {
            let mut row_seen = vec![false; m];
            for &r in &art_row {
                if row_seen[r] {
                    return None;
                }
                row_seen[r] = true;
            }
        }
        let mut cost = sf.c.clone();
        cost.extend(std::iter::repeat_n(0.0, n_art));
        ws.etas.clear();
        let mut st = State {
            sf,
            opts,
            ws,
            n,
            m,
            art_row,
            basis,
            in_basis,
            factor: BasisFactor::identity(m),
            xb: vec![0.0; m],
            cost,
            iterations: 0,
            dual_iterations: 0,
            degenerate_run: 0,
            pricing: Pricing::Dantzig,
            allow_artificials: false,
        };
        if st.refactorize().is_err() {
            return None;
        }
        // Inherited artificials must still sit at level zero: they pin rows
        // the exporting solve found linearly dependent, and a nonzero value
        // there means the new right-hand side is inconsistent on that row.
        for (r, &j) in st.basis.iter().enumerate() {
            if j >= st.n && st.xb[r].abs() > opts.feas_tol {
                return None;
            }
        }
        // The new b may have pushed some basic values negative. The basis
        // is still *dual* feasible (costs did not change since it priced
        // out optimal), which is exactly the dual simplex's starting
        // condition — re-optimize with dual pivots instead of throwing the
        // basis away.
        if !st.dual_simplex() {
            return None;
        }
        for v in st.xb.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        Some(st)
    }

    /// First-class dual simplex over a dual-feasible basis.
    ///
    /// While some basic value is negative the basis stays primal
    /// infeasible but (by the caller's invariant) dual feasible, so each
    /// iteration picks a leaving row among the infeasible ones and an
    /// entering column via the **dual ratio test** — the nonbasic column
    /// minimizing `d_j / -α_j` over columns with `α_j < 0` in the leaving
    /// row of `B⁻¹A`, which is exactly the largest dual step that keeps
    /// every reduced cost nonnegative. Leaving-row selection is
    /// most-negative-value (the dual analogue of Dantzig pricing); after
    /// [`SimplexOptions::bland_after`] consecutive degenerate steps (dual
    /// ratio ≈ 0) it switches to the dual form of Bland's rule — leaving
    /// row with the smallest basic column index, entering column with the
    /// smallest index among the ratio-test minimizers — whose pivot
    /// sequence cannot cycle, so termination is guaranteed.
    ///
    /// Bounded variables need no dedicated bound-flip handling here: the
    /// standard-form transform already reduces every finite bound to
    /// `x ≥ 0` plus an explicit `x ≤ ub − lb` row, so the textbook
    /// nonnegative-variable ratio test is complete for this form.
    ///
    /// Shares the solver-wide pivot budget (`max_iterations`) and the
    /// periodic refactorization cadence with the primal path. Returns
    /// `true` on reaching primal feasibility (a primal-and-dual-feasible
    /// basis, i.e. optimal for the current costs); `false` when no
    /// entering column exists (primal infeasible or numerics too far
    /// gone), a pivot is unusable, or the budget is exhausted — the caller
    /// then falls back to a cold two-phase solve, so a `false` here never
    /// costs correctness.
    fn dual_simplex(&mut self) -> bool {
        let mut bland = self.opts.bland_after == 0;
        let mut degenerate_run = 0usize;
        loop {
            if self.iterations >= self.opts.max_iterations {
                return false;
            }
            if self.ws.etas.len() >= self.opts.refactor_every && self.refactorize().is_err() {
                return false;
            }
            let mut r_out = None;
            if bland {
                // Dual Bland's rule: the infeasible row whose *basic column*
                // index is smallest.
                let mut best_col = usize::MAX;
                for (r, &v) in self.xb.iter().enumerate() {
                    if v < -self.opts.feas_tol && self.basis[r] < best_col {
                        best_col = self.basis[r];
                        r_out = Some(r);
                    }
                }
            } else {
                let mut worst = -self.opts.feas_tol;
                for (r, &v) in self.xb.iter().enumerate() {
                    if v < worst {
                        worst = v;
                        r_out = Some(r);
                    }
                }
            }
            let Some(r) = r_out else {
                return true;
            };
            // Row r of B⁻¹A, via ρ = B⁻ᵀ·e_r.
            let mut rho = self.ws.grab(self.m);
            rho[r] = 1.0;
            self.btran(&mut rho);
            let y = self.duals();
            let mut best: Option<(usize, f64)> = None;
            for j in 0..self.n {
                if self.in_basis[j] {
                    continue;
                }
                let mut alpha = 0.0;
                self.for_col(j, |k, v| alpha += v * rho[k]);
                if alpha < -self.opts.pivot_tol {
                    // Clamp tiny negative reduced costs (eta-file drift);
                    // the ratio keeps the duals feasible after the pivot.
                    let ratio = self.reduced_cost(j, &y).max(0.0) / -alpha;
                    let better = match best {
                        None => true,
                        // Bland tie-breaking: strictly better ratio, or a
                        // smaller column index within the tie tolerance.
                        Some((bj, br)) if bland => {
                            ratio < br - 1e-9 || (ratio <= br + 1e-9 && j < bj)
                        }
                        Some((_, br)) => ratio < br,
                    };
                    if better {
                        best = Some((j, ratio));
                    }
                }
            }
            self.ws.stash(rho);
            self.ws.stash(y);
            let Some((j_in, ratio)) = best else {
                return false;
            };
            let w = self.pivot_column(j_in);
            if w[r] >= -self.opts.pivot_tol {
                self.ws.stash(w);
                return false;
            }
            let theta = self.xb[r] / w[r];
            if ratio <= 1e-12 {
                degenerate_run += 1;
                if degenerate_run > self.opts.bland_after {
                    bland = true;
                }
            } else {
                degenerate_run = 0;
            }
            self.pivot_with_theta(j_in, r, &w, theta);
            self.ws.stash(w);
            self.dual_iterations += 1;
        }
    }

    fn num_cols(&self) -> usize {
        self.n + self.art_row.len()
    }

    /// Applies `f(row, value)` to each nonzero of column `j` (handles
    /// artificial identity columns).
    #[inline]
    fn for_col<F: FnMut(usize, f64)>(&self, j: usize, mut f: F) {
        if j < self.n {
            for (r, v) in self.sf.a.column(j) {
                f(r, v);
            }
        } else {
            f(self.art_row[j - self.n], 1.0);
        }
    }

    /// Reduced cost of column `j` given duals `y`.
    #[inline]
    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut dot = 0.0;
        self.for_col(j, |r, v| dot += v * y[r]);
        self.cost[j] - dot
    }

    /// Forward solve `B·z = v` through the LU factors and the eta file.
    /// Input is row-indexed; output is basis-position-indexed.
    fn ftran(&self, v: &mut [f64]) {
        self.factor.ftran(v);
        self.ws.etas.apply_ftran(v);
    }

    /// Transposed solve `Bᵀ·y = c` through the eta file and the LU
    /// factors. Input is basis-position-indexed; output is row-indexed.
    fn btran(&self, v: &mut [f64]) {
        self.ws.etas.apply_btran(v);
        self.factor.btran(v);
    }

    /// `w = B⁻¹ · A_j`, scattered from the CSC column and solved sparsely.
    /// The vector comes from the workspace pool; return it with
    /// [`SolverWorkspace::stash`] once dead.
    fn pivot_column(&mut self, j: usize) -> Vec<f64> {
        let mut w = self.ws.grab(self.m);
        self.for_col(j, |r, v| w[r] += v);
        self.ftran(&mut w);
        w
    }

    /// Dual vector `y = B⁻ᵀ c_B`. Pooled like [`State::pivot_column`].
    fn duals(&mut self) -> Vec<f64> {
        let mut y = self.ws.grab(self.m);
        for (pos, &j) in self.basis.iter().enumerate() {
            y[pos] = self.cost[j];
        }
        self.btran(&mut y);
        y
    }

    fn run(&mut self) -> Result<RawSolution, LpError> {
        // ---- Phase 1: minimize sum of artificials ----
        if !self.art_row.is_empty() {
            for k in 0..self.art_row.len() {
                self.cost[self.n + k] = 1.0;
            }
            let outcome = self.optimize()?;
            debug_assert!(
                outcome != PhaseOutcome::Unbounded,
                "phase-1 objective is bounded below by zero"
            );
            let p1_obj: f64 =
                self.basis.iter().zip(&self.xb).map(|(&j, &x)| self.cost[j] * x).sum();
            if p1_obj > self.opts.feas_tol {
                return Ok(RawSolution {
                    status: Status::Infeasible,
                    x: vec![0.0; self.n],
                    y: vec![0.0; self.m],
                    objective: f64::NAN,
                    iterations: self.iterations,
                    dual_iterations: self.dual_iterations,
                    basis: None,
                });
            }
            self.evict_artificials()?;
            // Reset costs for phase 2 (artificials get cost 0 and are barred
            // from entering).
            for c in self.cost.iter_mut() {
                *c = 0.0;
            }
        }
        self.cost[..self.n].copy_from_slice(&self.sf.c);
        for k in 0..self.art_row.len() {
            self.cost[self.n + k] = 0.0;
        }
        self.allow_artificials = false;
        self.pricing = Pricing::Dantzig;
        self.degenerate_run = 0;
        self.finish_phase2()
    }

    /// Runs phase 2 from the current (feasible) basis to termination and
    /// packages the result. Shared by the cold path (after phase 1) and the
    /// warm path (directly).
    fn finish_phase2(&mut self) -> Result<RawSolution, LpError> {
        let mut outcome = self.optimize()?;
        if outcome == PhaseOutcome::Optimal
            && !self.ws.etas.is_empty()
            && self.ws.etas.len() >= self.opts.refactor_every / 4
        {
            // Clean accumulated eta-file drift out of the basis before
            // reporting, and re-verify optimality on the refreshed numbers.
            self.refactorize()?;
            outcome = self.optimize()?;
        }
        if outcome == PhaseOutcome::Unbounded {
            return Ok(RawSolution {
                status: Status::Unbounded,
                x: vec![0.0; self.n],
                y: vec![0.0; self.m],
                objective: f64::NEG_INFINITY,
                iterations: self.iterations,
                dual_iterations: self.dual_iterations,
                basis: None,
            });
        }
        #[cfg(debug_assertions)]
        self.assert_optimality_certificate();

        let mut x = vec![0.0; self.n];
        for (r, &j) in self.basis.iter().enumerate() {
            if j < self.n {
                // Clamp tiny negative drift.
                x[j] = if self.xb[r] < 0.0 && self.xb[r] > -1e-9 { 0.0 } else { self.xb[r] };
            }
        }
        let y = self.duals();
        let objective = self.sf.c.iter().zip(&x).map(|(c, v)| c * v).sum();
        Ok(RawSolution {
            status: Status::Optimal,
            x,
            y,
            objective,
            iterations: self.iterations,
            dual_iterations: self.dual_iterations,
            basis: Some(self.export_basis()),
        })
    }

    /// Canonical encoding of the current basis (artificials become
    /// `n + row` markers, independent of solver-internal ordering).
    fn export_basis(&self) -> Basis {
        let cols = self
            .basis
            .iter()
            .map(|&j| if j < self.n { j } else { self.n + self.art_row[j - self.n] })
            .collect();
        Basis { cols, n_cols: self.n }
    }

    /// Pivots until the current cost vector is optimal.
    fn optimize(&mut self) -> Result<PhaseOutcome, LpError> {
        loop {
            if self.iterations >= self.opts.max_iterations {
                return Err(LpError::IterationLimit { limit: self.opts.max_iterations });
            }
            if self.ws.etas.len() >= self.opts.refactor_every {
                self.refactorize()?;
            }
            let y = self.duals();
            let entering = self.price(&y);
            self.ws.stash(y);
            let Some(j_in) = entering else {
                return Ok(PhaseOutcome::Optimal);
            };
            let w = self.pivot_column(j_in);
            let Some(r_out) = self.ratio_test(&w) else {
                self.ws.stash(w);
                return Ok(PhaseOutcome::Unbounded);
            };
            self.pivot(j_in, r_out, &w);
            self.ws.stash(w);
        }
    }

    /// Chooses an entering column with negative reduced cost, or `None` at
    /// optimality.
    fn price(&self, y: &[f64]) -> Option<usize> {
        let limit = if self.allow_artificials { self.num_cols() } else { self.n };
        match self.pricing {
            Pricing::Bland => (0..limit)
                .find(|&j| !self.in_basis[j] && self.reduced_cost(j, y) < -self.opts.pricing_tol),
            Pricing::Dantzig => {
                let mut best: Option<(usize, f64)> = None;
                for j in 0..limit {
                    if self.in_basis[j] {
                        continue;
                    }
                    let d = self.reduced_cost(j, y);
                    if d < -self.opts.pricing_tol && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((j, d));
                    }
                }
                best.map(|(j, _)| j)
            }
        }
    }

    /// Standard ratio test. Ties are broken for numerical stability by the
    /// largest pivot element (Dantzig mode) or, under Bland's rule, by the
    /// smallest basis column index (required for the termination guarantee).
    fn ratio_test(&self, w: &[f64]) -> Option<usize> {
        let mut min_ratio = f64::INFINITY;
        for (&wr, &xbr) in w.iter().zip(&self.xb) {
            if wr > self.opts.pivot_tol {
                min_ratio = min_ratio.min(xbr.max(0.0) / wr);
            }
        }
        if !min_ratio.is_finite() {
            return None;
        }
        let tied = (0..self.m).filter(|&r| {
            w[r] > self.opts.pivot_tol && self.xb[r].max(0.0) / w[r] <= min_ratio + 1e-9
        });
        match self.pricing {
            Pricing::Bland => tied.min_by_key(|&r| self.basis[r]),
            // total_cmp instead of partial_cmp: a NaN pivot weight (which a
            // pathological column could produce) must not panic the solver;
            // NaN sorts above every finite value under the IEEE total order,
            // and a NaN pivot element is then rejected by refactorization.
            Pricing::Dantzig => tied.max_by(|&a, &b| w[a].total_cmp(&w[b])),
        }
    }

    /// Executes the pivot: `j_in` enters, row `r_out` leaves. Costs
    /// O(nnz(w)): the basis representation absorbs the change as one
    /// appended eta vector instead of an O(m²) inverse update.
    fn pivot(&mut self, j_in: usize, r_out: usize, w: &[f64]) {
        let theta = (self.xb[r_out].max(0.0)) / w[r_out];
        self.pivot_with_theta(j_in, r_out, w, theta);
    }

    /// The pivot bookkeeping with an explicit step length: the primal path
    /// derives `theta` from the clamped ratio test, the dual repair path
    /// from a negative basic value over a negative pivot element.
    fn pivot_with_theta(&mut self, j_in: usize, r_out: usize, w: &[f64], theta: f64) {
        debug_assert!(!self.in_basis[j_in], "entering column {j_in} is already basic");
        debug_assert!(self.in_basis[self.basis[r_out]], "leaving column must currently be basic");
        if theta <= 1e-12 {
            self.degenerate_run += 1;
            if self.degenerate_run > self.opts.bland_after {
                self.pricing = Pricing::Bland;
            }
        } else {
            self.degenerate_run = 0;
            if self.pricing == Pricing::Bland {
                self.pricing = Pricing::Dantzig;
            }
        }

        // Update basic values.
        for (r, (xbr, &wr)) in self.xb.iter_mut().zip(w).enumerate() {
            if r != r_out {
                *xbr -= theta * wr;
            }
        }
        self.xb[r_out] = theta;

        // Record the product-form update B_new = B_old · E, where E is the
        // identity with column r_out replaced by w.
        self.ws.etas.push(r_out, w, self.opts.eta_drop_tol);

        let j_out = self.basis[r_out];
        self.in_basis[j_out] = false;
        self.in_basis[j_in] = true;
        self.basis[r_out] = j_in;
        self.iterations += 1;
        debug_assert_eq!(
            self.in_basis.iter().filter(|&&b| b).count(),
            self.m,
            "basis must hold exactly m distinct columns after a pivot"
        );
    }

    /// Debug-only optimality certificate: with the current duals, every
    /// column still eligible to enter must have a nonnegative reduced cost
    /// (up to pricing tolerance). Makes `cargo test` in debug mode an
    /// executable proof that `Optimal` is only ever reported together with a
    /// valid dual certificate.
    #[cfg(debug_assertions)]
    fn assert_optimality_certificate(&mut self) {
        let y = self.duals();
        let limit = if self.allow_artificials { self.num_cols() } else { self.n };
        for j in 0..limit {
            if self.in_basis[j] {
                continue;
            }
            let d = self.reduced_cost(j, &y);
            debug_assert!(
                d >= -self.opts.pricing_tol,
                "optimality certificate violated: column {j} has reduced cost {d}"
            );
        }
        self.ws.stash(y);
    }

    /// Pivot zero-level artificials out of the basis where a real column has
    /// a usable pivot element; rows where none exists are linearly dependent
    /// and keep their artificial (harmless: that row of `B⁻¹A` is zero for
    /// every real column, so no later pivot can change the artificial's
    /// value — the update formula subtracts multiples of `w[r] = 0`).
    fn evict_artificials(&mut self) -> Result<(), LpError> {
        for r in 0..self.m {
            if self.basis[r] < self.n {
                continue;
            }
            // Row r of B⁻¹ is B⁻ᵀ·e_r, a transposed solve away.
            let mut brow = self.ws.grab(self.m);
            brow[r] = 1.0;
            self.btran(&mut brow);
            let mut found = None;
            for j in 0..self.n {
                if self.in_basis[j] {
                    continue;
                }
                let mut piv = 0.0;
                self.for_col(j, |k, v| piv += v * brow[k]);
                if piv.abs() > self.opts.pivot_tol * 10.0 {
                    found = Some(j);
                    break;
                }
            }
            self.ws.stash(brow);
            if let Some(j) = found {
                let w = self.pivot_column(j);
                self.pivot(j, r, &w);
                self.ws.stash(w);
            }
        }
        Ok(())
    }

    /// Rebuilds the sparse LU from the basis columns, clears the eta file,
    /// and recomputes `x_B`. The basis-column gather buffer lives in the
    /// workspace so repeated refactorizations reuse its allocations.
    fn refactorize(&mut self) -> Result<(), LpError> {
        let mut cols = std::mem::take(&mut self.ws.factor_cols);
        cols.truncate(self.m);
        cols.resize_with(self.m, Vec::new);
        for (slot, &j) in self.basis.iter().enumerate() {
            let col = &mut cols[slot];
            col.clear();
            self.for_col(j, |r, v| col.push((r, v)));
        }
        let factor = BasisFactor::factorize(&cols, 1e-12);
        self.ws.factor_cols = cols;
        self.factor = factor?;
        self.ws.etas.clear();
        let mut xb = std::mem::take(&mut self.xb);
        xb.clear();
        xb.extend_from_slice(&self.sf.b);
        self.factor.ftran(&mut xb);
        for v in xb.iter_mut() {
            if *v < 0.0 && *v > -1e-9 {
                *v = 0.0;
            }
        }
        self.xb = xb;
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseOutcome {
    Optimal,
    Unbounded,
}

#[cfg(test)]
mod tests {
    use crate::{LinExpr, Model, Sense, SimplexOptions, Status};

    #[test]
    fn equality_constraints_need_artificials() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(x + 2.0 * y);
        m.eq(x + y, 3.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.value(x) - 3.0).abs() < 1e-7);
        assert!((s.objective() - 3.0).abs() < 1e-7);
    }

    #[test]
    fn geq_rows_need_artificials() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        m.geq(LinExpr::from(x), 2.5);
        let s = m.solve().unwrap();
        assert!((s.value(x) - 2.5).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        m.leq(LinExpr::from(x), 1.0);
        m.geq(LinExpr::from(x), 2.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), Status::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        m.geq(LinExpr::from(x), 1.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), Status::Unbounded);
    }

    #[test]
    fn redundant_equalities_are_harmless() {
        // x + y = 2 stated twice: the second row is linearly dependent, so an
        // artificial stays in the basis at level zero.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(3.0 * x + y);
        m.eq(x + y, 2.0);
        m.eq(x + y, 2.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 2.0).abs() < 1e-7);
        assert!((s.value(y) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints through the origin.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(x + y);
        m.leq(x - y, 0.0);
        m.leq(y - x, 0.0);
        m.leq(x + y, 2.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 2.0).abs() < 1e-7);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale (1955): the textbook instance on which Dantzig pricing with
        // naive tie-breaking cycles forever. Optimum: z = 0.05 at
        // x = (1/25, 0, 1, 0).
        let mut m = Model::new(Sense::Minimize);
        let x1 = m.add_var("x1", 0.0, f64::INFINITY);
        let x2 = m.add_var("x2", 0.0, f64::INFINITY);
        let x3 = m.add_var("x3", 0.0, f64::INFINITY);
        let x4 = m.add_var("x4", 0.0, f64::INFINITY);
        m.set_objective(-0.75 * x1 + 150.0 * x2 - 0.02 * x3 + 6.0 * x4);
        m.leq(0.25 * x1 - 60.0 * x2 - 0.04 * x3 + 9.0 * x4, 0.0);
        m.leq(0.5 * x1 - 90.0 * x2 - 0.02 * x3 + 3.0 * x4, 0.0);
        m.leq(LinExpr::from(x3), 1.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() + 0.05).abs() < 1e-7, "objective = {}", s.objective());
        assert!((s.value(x3) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn blands_rule_terminates_under_sparse_pricer() {
        // Beale's cycling instance again, but forced onto Bland's rule from
        // the very first pivot (bland_after = 0 trips the switch on the
        // first degenerate step). Termination at the known optimum shows
        // the anti-cycling guarantee survives the sparse pricing path.
        let mut m = Model::new(Sense::Minimize);
        let x1 = m.add_var("x1", 0.0, f64::INFINITY);
        let x2 = m.add_var("x2", 0.0, f64::INFINITY);
        let x3 = m.add_var("x3", 0.0, f64::INFINITY);
        let x4 = m.add_var("x4", 0.0, f64::INFINITY);
        m.set_objective(-0.75 * x1 + 150.0 * x2 - 0.02 * x3 + 6.0 * x4);
        m.leq(0.25 * x1 - 60.0 * x2 - 0.04 * x3 + 9.0 * x4, 0.0);
        m.leq(0.5 * x1 - 90.0 * x2 - 0.02 * x3 + 3.0 * x4, 0.0);
        m.leq(LinExpr::from(x3), 1.0);
        let opts = SimplexOptions { bland_after: 0, ..Default::default() };
        let s = m.solve_with(&opts).unwrap();
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() + 0.05).abs() < 1e-7, "objective = {}", s.objective());
    }

    #[test]
    fn klee_minty_cube_terminates_optimally() {
        // The Klee–Minty cube (n = 6): exponential worst case for Dantzig
        // pricing but must still terminate at the known optimum 5^n... the
        // standard form max Σ 2^{n-j} x_j with nested constraints; optimum
        // is 5^n at the last vertex.
        let n = 6usize;
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..n).map(|i| m.add_var(format!("x{i}"), 0.0, f64::INFINITY)).collect();
        let mut obj = LinExpr::new();
        for (j, &x) in xs.iter().enumerate() {
            obj.add_term(x, 2f64.powi((n - 1 - j) as i32));
        }
        m.set_objective(obj);
        for i in 0..n {
            let mut e = LinExpr::new();
            for (j, &xj) in xs.iter().enumerate().take(i) {
                e.add_term(xj, 2f64.powi((i - j + 1) as i32));
            }
            e.add_term(xs[i], 1.0);
            m.leq(e, 5f64.powi(i as i32 + 1));
        }
        let s = m.solve().unwrap();
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 5f64.powi(n as i32)).abs() < 1e-6, "{}", s.objective());
    }

    #[test]
    fn iteration_limit_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(3.0 * x + 2.0 * y);
        m.leq(x + y, 4.0);
        m.leq(x + 3.0 * y, 6.0);
        let opts = SimplexOptions { max_iterations: 0, ..Default::default() };
        assert!(matches!(m.solve_with(&opts), Err(crate::LpError::IterationLimit { limit: 0 })));
    }

    #[test]
    fn larger_transportation_problem() {
        // 3 supplies × 4 demands balanced transportation problem with known
        // optimum (computed by hand via the MODI method).
        let supply = [20.0, 30.0, 25.0];
        let demand = [10.0, 25.0, 15.0, 25.0];
        let cost = [[4.0, 6.0, 8.0, 8.0], [6.0, 8.0, 6.0, 7.0], [5.0, 7.0, 6.0, 8.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut vars = Vec::new();
        for i in 0..3 {
            let mut row = Vec::new();
            for j in 0..4 {
                row.push(m.add_var(format!("x{i}{j}"), 0.0, f64::INFINITY));
            }
            vars.push(row);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..4 {
                obj.add_term(vars[i][j], cost[i][j]);
            }
        }
        m.set_objective(obj);
        for i in 0..3 {
            let e: LinExpr = (0..4).map(|j| LinExpr::from(vars[i][j])).sum();
            m.eq(e, supply[i]);
        }
        for j in 0..4 {
            let e: LinExpr = (0..3).map(|i| LinExpr::from(vars[i][j])).sum();
            m.eq(e, demand[j]);
        }
        let s = m.solve().unwrap();
        assert_eq!(s.status(), Status::Optimal);
        // Verify against exhaustive LP relaxation optimum computed offline.
        // Feasibility checks:
        for i in 0..3 {
            let tot: f64 = (0..4).map(|j| s.value(vars[i][j])).sum();
            assert!((tot - supply[i]).abs() < 1e-6);
        }
        for j in 0..4 {
            let tot: f64 = (0..3).map(|i| s.value(vars[i][j])).sum();
            assert!((tot - demand[j]).abs() < 1e-6);
        }
        // The optimum of this balanced instance is 470, independently
        // verified with a successive-shortest-paths min-cost-flow solver
        // (integral data, so the LP optimum coincides).
        assert!((s.objective() - 470.0).abs() < 1e-6, "objective = {}", s.objective());
    }

    #[test]
    fn warm_restart_from_optimal_basis_takes_zero_pivots() {
        // Re-solving the same problem from its own exported basis must not
        // pivot at all: the basis prices out immediately.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(2.0 * x + 3.0 * y);
        m.geq(x + y, 4.0);
        m.leq(x - y, 1.0);
        let cold = m.solve().unwrap();
        assert_eq!(cold.status(), Status::Optimal);
        let basis = cold.basis().expect("optimal solve exports a basis").clone();
        let warm = m.solve_warm(&SimplexOptions::default(), Some(&basis)).unwrap();
        assert_eq!(warm.status(), Status::Optimal);
        assert!((warm.objective() - cold.objective()).abs() < 1e-9);
        assert_eq!(warm.iterations(), 0, "warm restart should not pivot");
    }

    #[test]
    fn warm_start_survives_rhs_change() {
        // Same constraint shape, different right-hand side: the old basis
        // stays feasible here and the warm solve must agree with cold.
        let build = |cap: f64| {
            let mut m = Model::new(Sense::Minimize);
            let x = m.add_var("x", 0.0, f64::INFINITY);
            let y = m.add_var("y", 0.0, f64::INFINITY);
            m.set_objective(5.0 * x + 4.0 * y);
            m.geq(x + y, cap);
            m.leq(2.0 * x + y, 3.0 * cap);
            m
        };
        let first = build(4.0).solve().unwrap();
        let basis = first.basis().expect("basis exported").clone();
        let m2 = build(5.0);
        let warm = m2.solve_warm(&SimplexOptions::default(), Some(&basis)).unwrap();
        let cold = m2.solve().unwrap();
        assert_eq!(warm.status(), Status::Optimal);
        assert!(
            (warm.objective() - cold.objective()).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective(),
            cold.objective()
        );
        assert!(warm.iterations() <= cold.iterations());
    }

    #[test]
    fn warm_start_repairs_primal_infeasible_basis_with_dual_pivots() {
        // Tightening `x ≤ 3` to `x ≤ 1` drives the exported basis primal
        // infeasible (its slack goes negative), but it stays dual feasible:
        // the dual repair must recover the new optimum in fewer pivots than
        // a cold two-phase solve instead of falling back.
        let build = |cap: f64| {
            let mut m = Model::new(Sense::Minimize);
            let x = m.add_var("x", 0.0, f64::INFINITY);
            let y = m.add_var("y", 0.0, f64::INFINITY);
            m.set_objective(x + 2.0 * y);
            m.geq(x + y, 2.0);
            m.leq(LinExpr::from(x), cap);
            m
        };
        let first = build(3.0).solve().unwrap();
        assert_eq!(first.status(), Status::Optimal);
        let basis = first.basis().expect("basis exported").clone();
        let m2 = build(1.0);
        let cold = m2.solve().unwrap();
        let warm = m2.solve_warm(&SimplexOptions::default(), Some(&basis)).unwrap();
        assert_eq!(warm.status(), Status::Optimal);
        assert!(
            (warm.objective() - cold.objective()).abs() < 1e-9,
            "warm {} vs cold {}",
            warm.objective(),
            cold.objective()
        );
        assert!((warm.objective() - 3.0).abs() < 1e-9);
        assert!(
            warm.iterations() < cold.iterations(),
            "repair should beat the cold solve: warm {} vs cold {}",
            warm.iterations(),
            cold.iterations()
        );
    }

    #[test]
    fn warm_start_with_mismatched_dimensions_falls_back_to_cold() {
        let mut small = Model::new(Sense::Minimize);
        let x = small.add_var("x", 0.0, f64::INFINITY);
        small.set_objective(LinExpr::from(x));
        small.geq(LinExpr::from(x), 1.0);
        let basis = small.solve().unwrap().basis().expect("basis").clone();

        let mut big = Model::new(Sense::Minimize);
        let a = big.add_var("a", 0.0, f64::INFINITY);
        let b = big.add_var("b", 0.0, f64::INFINITY);
        big.set_objective(a + b);
        big.geq(a + b, 2.0);
        big.leq(a - b, 1.0);
        let s = big.solve_warm(&SimplexOptions::default(), Some(&basis)).unwrap();
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 2.0).abs() < 1e-7);
    }

    #[test]
    fn warm_basis_round_trips_through_rank_deficient_rows() {
        // A redundant equality leaves an artificial in the exported basis
        // (canonically encoded); warm-starting from it must still work.
        let build = || {
            let mut m = Model::new(Sense::Minimize);
            let x = m.add_var("x", 0.0, f64::INFINITY);
            let y = m.add_var("y", 0.0, f64::INFINITY);
            m.set_objective(3.0 * x + y);
            m.eq(x + y, 2.0);
            m.eq(x + y, 2.0);
            m
        };
        let cold = build().solve().unwrap();
        let basis = cold.basis().expect("basis exported despite dependent row").clone();
        let warm = build().solve_warm(&SimplexOptions::default(), Some(&basis)).unwrap();
        assert_eq!(warm.status(), Status::Optimal);
        assert!((warm.objective() - cold.objective()).abs() < 1e-9);
        assert_eq!(warm.iterations(), 0);
    }

    #[test]
    fn infeasible_and_unbounded_export_no_basis() {
        let mut inf = Model::new(Sense::Minimize);
        let x = inf.add_var("x", 0.0, f64::INFINITY);
        inf.set_objective(LinExpr::from(x));
        inf.leq(LinExpr::from(x), 1.0);
        inf.geq(LinExpr::from(x), 2.0);
        assert!(inf.solve().unwrap().basis().is_none());

        let mut unb = Model::new(Sense::Maximize);
        let y = unb.add_var("y", 0.0, f64::INFINITY);
        unb.set_objective(LinExpr::from(y));
        unb.geq(LinExpr::from(y), 1.0);
        assert!(unb.solve().unwrap().basis().is_none());
    }
}
