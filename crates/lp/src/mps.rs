//! Free-format MPS export and import.
//!
//! MPS is the lingua franca of LP solvers; being able to dump any
//! [`Model`] lets a Postcard formulation be cross-checked against external
//! solvers (GLPK, CPLEX, HiGHS, …) during debugging, and the parser lets
//! test fixtures live as plain text. Supported sections: `NAME`, `ROWS`
//! (`N`/`L`/`G`/`E`), `COLUMNS`, `RHS`, `BOUNDS` (`LO`, `UP`, `FX`, `FR`,
//! `MI`, `PL`), `ENDATA`. Ranges and integrality are not supported — the
//! Postcard problems need neither.

use crate::expr::LinExpr;
use crate::model::{Model, Relation, Sense};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Error from [`parse_mps`].
#[derive(Debug, Clone, PartialEq)]
pub struct MpsParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for MpsParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MPS line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MpsParseError {}

/// Serializes a model to free-format MPS.
///
/// The objective sense is recorded as a comment (`* SENSE: MAXIMIZE`) since
/// classic MPS has no sense field; [`parse_mps`] honours the comment.
/// Variable and constraint names are `x{i}` / `c{i}` (MPS frowns on
/// arbitrary identifiers), with original names in trailing comments of the
/// header.
pub fn write_mps(model: &Model, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "NAME          {name}");
    if model.sense() == Sense::Maximize {
        let _ = writeln!(out, "* SENSE: MAXIMIZE");
    }
    let _ = writeln!(out, "ROWS");
    let _ = writeln!(out, " N  COST");
    for (id, con) in model.constraints() {
        let tag = match con.relation() {
            Relation::Leq => 'L',
            Relation::Geq => 'G',
            Relation::Eq => 'E',
        };
        let _ = writeln!(out, " {tag}  c{}", id.index());
    }
    let _ = writeln!(out, "COLUMNS");
    for i in 0..model.num_vars() {
        let v = crate::Variable(i);
        let obj_coef = model.objective_expr().coefficient(v);
        // postcard-analyze: allow(PA101) — MPS omits exact-zero entries.
        if obj_coef != 0.0 {
            let _ = writeln!(out, "    x{i}  COST  {obj_coef}");
        }
        for (id, con) in model.constraints() {
            let c = con.expr().coefficient(v);
            // postcard-analyze: allow(PA101) — MPS omits exact-zero entries.
            if c != 0.0 {
                let _ = writeln!(out, "    x{i}  c{}  {c}", id.index());
            }
        }
    }
    let _ = writeln!(out, "RHS");
    for (id, con) in model.constraints() {
        // postcard-analyze: allow(PA101) — MPS omits exact-zero entries.
        if con.rhs() != 0.0 {
            let _ = writeln!(out, "    RHS  c{}  {}", id.index(), con.rhs());
        }
    }
    let _ = writeln!(out, "BOUNDS");
    for i in 0..model.num_vars() {
        let (lo, hi) = model.bounds(crate::Variable(i));
        // Default MPS bounds are [0, ∞): only emit deviations.
        // postcard-analyze: allow(PA101) — comparing against the exact default.
        if lo == 0.0 && hi == f64::INFINITY {
            continue;
        }
        if (lo - hi).abs() < f64::EPSILON && lo.is_finite() {
            let _ = writeln!(out, " FX BND  x{i}  {lo}");
            continue;
        }
        if lo.is_infinite() && hi.is_infinite() {
            let _ = writeln!(out, " FR BND  x{i}");
            continue;
        }
        if lo.is_infinite() {
            let _ = writeln!(out, " MI BND  x{i}");
        // postcard-analyze: allow(PA101) — exact MPS default lower bound.
        } else if lo != 0.0 {
            let _ = writeln!(out, " LO BND  x{i}  {lo}");
        }
        if hi.is_finite() {
            let _ = writeln!(out, " UP BND  x{i}  {hi}");
        }
    }
    let _ = writeln!(out, "ENDATA");
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Rows,
    Columns,
    Rhs,
    Bounds,
    Done,
}

/// Parses free-format MPS produced by [`write_mps`] (or by hand).
///
/// # Errors
///
/// Returns [`MpsParseError`] naming the first malformed line.
pub fn parse_mps(text: &str) -> Result<Model, MpsParseError> {
    let mut sense = Sense::Minimize;
    let mut rows: BTreeMap<String, Relation> = BTreeMap::new();
    let mut row_order: Vec<String> = Vec::new();
    let mut obj_row: Option<String> = None;
    let mut col_entries: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    let mut col_order: Vec<String> = Vec::new();
    let mut rhs: BTreeMap<String, f64> = BTreeMap::new();
    let mut bounds: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    let mut section = Section::None;

    for (lineno, raw) in text.lines().enumerate() {
        let err = |message: String| MpsParseError { line: lineno + 1, message };
        if raw.starts_with('*') {
            if raw.contains("SENSE: MAXIMIZE") {
                sense = Sense::Maximize;
            }
            continue;
        }
        let line = raw.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        let is_header = !raw.starts_with(' ') && !raw.starts_with('\t');
        let fields: Vec<&str> = line.split_whitespace().collect();
        if is_header {
            section = match fields[0] {
                "NAME" => section,
                "ROWS" => Section::Rows,
                "COLUMNS" => Section::Columns,
                "RHS" => Section::Rhs,
                "BOUNDS" => Section::Bounds,
                "RANGES" => return Err(err("RANGES section is not supported".into())),
                "ENDATA" => Section::Done,
                other => return Err(err(format!("unknown section `{other}`"))),
            };
            continue;
        }
        match section {
            Section::Rows => {
                if fields.len() != 2 {
                    return Err(err("ROWS lines need `<type> <name>`".into()));
                }
                match fields[0] {
                    "N" => obj_row = Some(fields[1].to_string()),
                    "L" | "G" | "E" => {
                        let rel = match fields[0] {
                            "L" => Relation::Leq,
                            "G" => Relation::Geq,
                            _ => Relation::Eq,
                        };
                        rows.insert(fields[1].to_string(), rel);
                        row_order.push(fields[1].to_string());
                    }
                    other => return Err(err(format!("unknown row type `{other}`"))),
                }
            }
            Section::Columns => {
                // `col row value [row value]`
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(err("COLUMNS lines need `col row value [row value]`".into()));
                }
                let col = fields[0].to_string();
                if !col_entries.contains_key(&col) {
                    col_order.push(col.clone());
                }
                let entry = col_entries.entry(col).or_default();
                for pair in fields[1..].chunks(2) {
                    let value: f64 =
                        pair[1].parse().map_err(|_| err(format!("bad number `{}`", pair[1])))?;
                    entry.push((pair[0].to_string(), value));
                }
            }
            Section::Rhs => {
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(err("RHS lines need `set row value [row value]`".into()));
                }
                for pair in fields[1..].chunks(2) {
                    let value: f64 =
                        pair[1].parse().map_err(|_| err(format!("bad number `{}`", pair[1])))?;
                    rhs.insert(pair[0].to_string(), value);
                }
            }
            Section::Bounds => {
                if fields.len() < 3 {
                    return Err(err("BOUNDS lines need `<type> <set> <col> [value]`".into()));
                }
                let col = fields[2].to_string();
                let b = bounds.entry(col).or_insert((0.0, f64::INFINITY));
                let value = || -> Result<f64, MpsParseError> {
                    fields
                        .get(3)
                        .ok_or_else(|| err("bound needs a value".into()))?
                        .parse()
                        .map_err(|_| err(format!("bad number `{}`", fields[3])))
                };
                match fields[0] {
                    "LO" => b.0 = value()?,
                    "UP" => b.1 = value()?,
                    "FX" => {
                        let v = value()?;
                        *b = (v, v);
                    }
                    "FR" => *b = (f64::NEG_INFINITY, f64::INFINITY),
                    "MI" => b.0 = f64::NEG_INFINITY,
                    "PL" => b.1 = f64::INFINITY,
                    other => return Err(err(format!("unknown bound type `{other}`"))),
                }
            }
            Section::None | Section::Done => {
                return Err(err("data outside any section".into()));
            }
        }
    }

    let obj_row = obj_row.unwrap_or_else(|| "COST".into());
    let mut model = Model::new(sense);
    let mut vars = BTreeMap::new();
    for col in &col_order {
        let (lo, hi) = bounds.get(col).copied().unwrap_or((0.0, f64::INFINITY));
        vars.insert(col.clone(), model.add_var(col.clone(), lo, hi));
    }
    let mut obj = LinExpr::new();
    let mut row_exprs: BTreeMap<&str, LinExpr> = BTreeMap::new();
    for (col, entries) in &col_entries {
        let v = vars[col];
        for (row, value) in entries {
            if *row == obj_row {
                obj.add_term(v, *value);
            } else if rows.contains_key(row.as_str()) {
                row_exprs.entry(row.as_str()).or_default().add_term(v, *value);
            } else {
                return Err(MpsParseError {
                    line: 0,
                    message: format!("column `{col}` references unknown row `{row}`"),
                });
            }
        }
    }
    model.set_objective(obj);
    for row in &row_order {
        let expr = row_exprs.remove(row.as_str()).unwrap_or_default();
        let b = rhs.get(row).copied().unwrap_or(0.0);
        model.add_constraint(expr, rows[row], b);
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sense, Status};

    fn sample_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x0", 0.0, f64::INFINITY);
        let y = m.add_var("x1", 1.0, 5.0);
        m.set_objective(3.0 * x + 2.0 * y);
        m.leq(x + y, 4.0);
        m.geq(x - y, -2.0);
        m.eq(0.5 * x + y, 3.0);
        m
    }

    #[test]
    fn round_trip_preserves_optimum() {
        let m = sample_model();
        let mps = write_mps(&m, "SAMPLE");
        let back = parse_mps(&mps).unwrap();
        let a = m.solve().unwrap();
        let b = back.solve().unwrap();
        assert_eq!(a.status(), Status::Optimal);
        assert_eq!(b.status(), Status::Optimal);
        assert!(
            (a.objective() - b.objective()).abs() < 1e-9,
            "{} vs {}",
            a.objective(),
            b.objective()
        );
    }

    #[test]
    fn writer_emits_all_sections() {
        let mps = write_mps(&sample_model(), "SAMPLE");
        for section in ["NAME", "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA"] {
            assert!(mps.contains(section), "missing {section}:\n{mps}");
        }
        assert!(mps.contains("* SENSE: MAXIMIZE"));
        assert!(mps.contains(" L  c0"));
        assert!(mps.contains(" G  c1"));
        assert!(mps.contains(" E  c2"));
    }

    #[test]
    fn parses_hand_written_fixture() {
        let text = "\
NAME          TINY
ROWS
 N  COST
 L  LIM1
COLUMNS
    X1  COST  1.0  LIM1  1.0
    X2  COST  2.0  LIM1  3.0
RHS
    RHS  LIM1  12.0
BOUNDS
 UP BND  X1  4.0
ENDATA
";
        let m = parse_mps(text).unwrap();
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        let s = m.solve().unwrap();
        // Minimize x1 + 2 x2 with x1 ≤ 4, x1 + 3 x2 ≤ 12: optimum 0 at the
        // origin.
        assert!((s.objective() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn free_and_fixed_bounds_round_trip() {
        let mut m = Model::new(Sense::Minimize);
        let f = m.add_var("free", f64::NEG_INFINITY, f64::INFINITY);
        let x = m.add_var("fixed", 2.0, 2.0);
        let u = m.add_var("upper_only", f64::NEG_INFINITY, 7.0);
        // Note `-u`: with `min`, u rises to its upper bound 7, keeping the
        // problem bounded. Optimum: f = -3, x = 2, u = 7 ⇒ -8.
        m.set_objective(LinExpr::from(f) + x - 1.0 * u);
        m.geq(LinExpr::from(f), -3.0);
        let mps = write_mps(&m, "B");
        let back = parse_mps(&mps).unwrap();
        let a = m.solve().unwrap();
        let b = back.solve().unwrap();
        assert_eq!(a.status(), Status::Optimal);
        assert!((a.objective() + 8.0).abs() < 1e-9, "{}", a.objective());
        assert!((a.objective() - b.objective()).abs() < 1e-9);
    }

    #[test]
    fn errors_name_the_line() {
        let e = parse_mps("ROWS\n X  BADTYPE\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown row type"));
        let e = parse_mps("RANGES\n").unwrap_err();
        assert!(e.message.contains("not supported"));
    }

    #[test]
    fn postcard_style_lp_round_trips() {
        // A miniature Postcard LP shape: flow vars + X envelope vars.
        let mut m = Model::new(Sense::Minimize);
        let m01 = m.add_var("m01", 0.0, f64::INFINITY);
        let m12 = m.add_var("m12", 0.0, f64::INFINITY);
        let x01 = m.add_var("x01", 2.0, f64::INFINITY);
        let x12 = m.add_var("x12", 0.0, f64::INFINITY);
        m.set_objective(1.0 * x01 + 3.0 * x12);
        m.eq(LinExpr::from(m01), 6.0);
        m.eq(m01 - m12, 0.0);
        m.leq(m01 - x01, 0.0);
        m.leq(m12 - x12, 0.0);
        let a = m.solve().unwrap().objective();
        let b = parse_mps(&write_mps(&m, "P")).unwrap().solve().unwrap().objective();
        assert!((a - b).abs() < 1e-9);
    }
}
