//! Opt-in presolve: shrink a [`Model`] before the simplex sees it.
//!
//! Three classic, always-safe reductions are implemented:
//!
//! 1. **Empty-row elimination** — a constraint whose left-hand side has no
//!    (nonzero) terms reads `0 ⋈ rhs`; it is dropped, after checking whether
//!    the trivial relation holds (a violated one proves infeasibility);
//! 2. **Singleton-row folding** — a constraint touching exactly one
//!    variable (`a·x ⋈ b`) is a bound in disguise and is folded into the
//!    variable's bound interval (detecting empty intervals as
//!    infeasibility);
//! 3. **Duplicate-row elimination** — rows with identical left-hand sides
//!    keep only their tightest right-hand side.
//!
//! The Postcard formulations benefit directly: every capacity row on an arc
//! used by a single file is a singleton, and batches with overlapping
//! windows produce many parallel rows.
//!
//! Primal solutions are unaffected (variables are never eliminated); dual
//! values of *removed* rows are reported as 0 — the multiplier of a folded
//! singleton row migrates to the bound, which this crate does not expose.
//! Use presolve when you want speed and primal answers; solve the original
//! model when you need the full dual vector.

use crate::error::LpError;
use crate::model::{Model, Relation};
use crate::solution::{Solution, Status};
use crate::Variable;
use std::collections::BTreeMap;

/// Duplicate-lhs bookkeeping: canonical row key (bit-exact coefficient
/// terms + relation tag) → (kept slot in `kept_rows`, tightest rhs so far).
type DupGroups = BTreeMap<(Vec<(usize, u64)>, u8), (usize, f64)>;

/// The outcome of presolving a model: a reduced model plus the bookkeeping
/// to map solutions back.
#[must_use = "a Presolved carries the reduced model (and possibly a proof of infeasibility)"]
#[derive(Debug, Clone)]
pub struct Presolved {
    reduced: Model,
    /// For each kept row of the reduced model, the original constraint
    /// index.
    kept_rows: Vec<usize>,
    num_original_rows: usize,
    /// Presolve already proved infeasibility (empty bound interval or
    /// contradictory duplicate equalities).
    infeasible: bool,
}

impl Presolved {
    /// The reduced model.
    pub fn reduced(&self) -> &Model {
        &self.reduced
    }

    /// How many constraints presolve removed.
    pub fn rows_removed(&self) -> usize {
        self.num_original_rows - self.kept_rows.len()
    }

    /// `true` when presolve alone proved the model infeasible.
    pub fn proven_infeasible(&self) -> bool {
        self.infeasible
    }

    /// Solves the reduced model and maps the solution back to the original
    /// constraint indexing (duals of removed rows are 0; see the module
    /// docs).
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::solve`].
    pub fn solve(&self) -> Result<Solution, LpError> {
        if self.infeasible {
            return Ok(Solution::new(
                Status::Infeasible,
                f64::NAN,
                vec![0.0; self.reduced.num_vars()],
                vec![0.0; self.num_original_rows],
                0,
                0,
                None,
            ));
        }
        let sol = self.reduced.solve()?;
        let mut duals = vec![0.0; self.num_original_rows];
        for (reduced_idx, &orig_idx) in self.kept_rows.iter().enumerate() {
            duals[orig_idx] = sol.duals()[reduced_idx];
        }
        // The reduced model's basis indexes *its* standard form, not the
        // original model's, so it is not forwarded for warm starts.
        Ok(Solution::new(
            sol.status(),
            sol.objective(),
            sol.values().to_vec(),
            duals,
            sol.iterations(),
            sol.dual_iterations(),
            None,
        ))
    }
}

/// Key identifying a row's left-hand side (terms rounded to exact bits).
fn lhs_key(expr: &crate::LinExpr) -> Vec<(usize, u64)> {
    // postcard-analyze: allow(PA101) — exact-zero sparsity filter.
    expr.iter().filter(|&(_, c)| c != 0.0).map(|(v, c)| (v.index(), c.to_bits())).collect()
}

/// Presolves `model` (see the module docs for the reductions applied).
pub fn presolve(model: &Model) -> Presolved {
    let mut reduced = Model::new(model.sense());
    for i in 0..model.num_vars() {
        let v = Variable(i);
        let (lo, hi) = model.bounds(v);
        reduced.add_var(model.var_name(v).to_string(), lo, hi);
    }
    reduced.set_objective(model.objective_expr().clone());

    let mut infeasible = false;
    let mut kept_rows = Vec::new();
    let mut groups: DupGroups = BTreeMap::new();

    for (id, con) in model.constraints() {
        // postcard-analyze: allow(PA101) — exact-zero sparsity filter.
        let terms: Vec<(Variable, f64)> = con.expr().iter().filter(|&(_, c)| c != 0.0).collect();
        // Empty row → `0 ⋈ rhs`: drop it, flagging infeasibility when the
        // trivial relation does not hold.
        if terms.is_empty() {
            let holds = match con.relation() {
                Relation::Leq => 0.0 <= con.rhs() + 1e-12,
                Relation::Geq => 0.0 >= con.rhs() - 1e-12,
                Relation::Eq => con.rhs().abs() <= 1e-12,
            };
            if !holds {
                infeasible = true;
            }
            continue;
        }
        // Singleton row → fold into the bound.
        if let [(v, a)] = terms[..] {
            let ratio = con.rhs() / a;
            let (mut lo, mut hi) = reduced.bounds(v);
            let (implies_ub, implies_lb) = match (con.relation(), a > 0.0) {
                (Relation::Leq, true) | (Relation::Geq, false) => (true, false),
                (Relation::Leq, false) | (Relation::Geq, true) => (false, true),
                (Relation::Eq, _) => (true, true),
            };
            if implies_ub {
                hi = hi.min(ratio);
            }
            if implies_lb {
                lo = lo.max(ratio);
            }
            if lo > hi + 1e-12 {
                infeasible = true;
            } else {
                reduced.set_bounds(v, lo, hi.max(lo));
            }
            continue;
        }
        // Duplicate-lhs rows → keep the tightest rhs.
        let rel_tag = match con.relation() {
            Relation::Leq => 0u8,
            Relation::Geq => 1,
            Relation::Eq => 2,
        };
        let key = (lhs_key(con.expr()), rel_tag);
        match groups.get_mut(&key) {
            Some((slot, best_rhs)) => {
                match con.relation() {
                    Relation::Leq => *best_rhs = best_rhs.min(con.rhs()),
                    Relation::Geq => *best_rhs = best_rhs.max(con.rhs()),
                    Relation::Eq => {
                        if (*best_rhs - con.rhs()).abs() > 1e-9 {
                            infeasible = true;
                        }
                    }
                }
                // Note: the *first* row of the group stays the one reported
                // in `kept_rows`; its rhs is updated below after the loop.
                let _ = slot;
            }
            None => {
                groups.insert(key, (kept_rows.len(), con.rhs()));
                kept_rows.push(id.index());
            }
        }
    }

    // Emit the kept rows with their (possibly tightened) rhs, in original
    // order.
    let mut rows: Vec<(usize, usize, f64)> =
        groups.into_iter().map(|((_, _), (slot, rhs))| (slot, kept_rows[slot], rhs)).collect();
    rows.sort_unstable_by_key(|&(slot, _, _)| slot);
    let mut final_kept = Vec::with_capacity(rows.len());
    for (_, orig_idx, rhs) in rows {
        let con = model.constraint(crate::ConstraintId(orig_idx));
        reduced.add_constraint(con.expr().clone(), con.relation(), rhs);
        final_kept.push(orig_idx);
    }
    debug_assert!(
        // postcard-analyze: allow(PA101) — exact-zero sparsity test.
        reduced.constraints().all(|(_, c)| c.expr().iter().any(|(_, coef)| coef != 0.0)),
        "presolve must not emit empty rows"
    );

    Presolved {
        reduced,
        kept_rows: final_kept,
        num_original_rows: model.num_constraints(),
        infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Sense};

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(x + y);
        m.leq(2.0 * x, 10.0); // x ≤ 5
        m.geq(LinExpr::from(y), 3.0); // y ≥ 3
        m.geq(x + y, 4.0); // kept
        let p = presolve(&m);
        assert_eq!(p.reduced().num_constraints(), 1);
        assert_eq!(p.rows_removed(), 2);
        assert_eq!(p.reduced().bounds(x), (0.0, 5.0));
        assert_eq!(p.reduced().bounds(y), (3.0, f64::INFINITY));
        let a = p.solve().unwrap();
        let b = m.solve().unwrap();
        assert!((a.objective() - b.objective()).abs() < 1e-9);
        assert_eq!(a.duals().len(), 3);
    }

    #[test]
    fn negative_coefficient_singleton_flips_direction() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        m.leq(-2.0 * x, -6.0); // ⇔ x ≥ 3
        m.leq(LinExpr::from(x), 8.0);
        let p = presolve(&m);
        assert_eq!(p.reduced().num_constraints(), 0);
        assert_eq!(p.reduced().bounds(x), (3.0, 8.0));
        assert!((p.solve().unwrap().objective() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn crossing_bounds_prove_infeasibility() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        m.leq(LinExpr::from(x), 1.0);
        m.geq(LinExpr::from(x), 2.0);
        let p = presolve(&m);
        assert!(p.proven_infeasible());
        assert_eq!(p.solve().unwrap().status(), Status::Infeasible);
        // The full solver agrees.
        assert_eq!(m.solve().unwrap().status(), Status::Infeasible);
    }

    #[test]
    fn empty_rows_are_dropped_or_prove_infeasibility() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0);
        m.set_objective(LinExpr::from(x));
        m.leq(LinExpr::new(), 5.0); // 0 ≤ 5: vacuous, dropped
        m.geq(x + 1.0, 3.0); // kept (as a bound)
        let p = presolve(&m);
        assert!(!p.proven_infeasible());
        assert_eq!(p.reduced().num_constraints(), 0);
        assert!((p.solve().unwrap().objective() - 2.0).abs() < 1e-9);

        let mut bad = Model::new(Sense::Minimize);
        let y = bad.add_var("y", 0.0, 1.0);
        bad.set_objective(LinExpr::from(y));
        bad.geq(LinExpr::new(), 5.0); // 0 ≥ 5: impossible
        let p = presolve(&bad);
        assert!(p.proven_infeasible());
        assert_eq!(p.solve().unwrap().status(), Status::Infeasible);
    }

    #[test]
    fn duplicate_leq_rows_keep_tightest() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(x + y);
        m.leq(x + y, 9.0);
        m.leq(x + y, 4.0);
        m.leq(x + y, 7.0);
        let p = presolve(&m);
        assert_eq!(p.reduced().num_constraints(), 1);
        let s = p.solve().unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn contradictory_duplicate_equalities_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(x + y);
        m.eq(x + y, 3.0);
        m.eq(x + y, 5.0);
        let p = presolve(&m);
        assert!(p.proven_infeasible());
        assert_eq!(m.solve().unwrap().status(), Status::Infeasible);
    }

    #[test]
    fn presolved_optimum_matches_original_on_random_models() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..20 {
            let n = rng.gen_range(2..6usize);
            let mut m = Model::new(Sense::Minimize);
            let vars: Vec<_> = (0..n).map(|i| m.add_var(format!("x{i}"), 0.0, 10.0)).collect();
            let mut obj = LinExpr::new();
            for &v in &vars {
                obj.add_term(v, rng.gen_range(-3.0..3.0));
            }
            m.set_objective(obj);
            for _ in 0..rng.gen_range(1..8usize) {
                // Mix of singletons, duplicates, and general rows, all
                // feasible at the box midpoint x = 5.
                match rng.gen_range(0..3) {
                    0 => {
                        let v = vars[rng.gen_range(0..n)];
                        m.leq(LinExpr::from(v), rng.gen_range(5.0..10.0));
                    }
                    1 => {
                        let mut e = LinExpr::new();
                        let mut mid = 0.0;
                        for &v in &vars {
                            let c = rng.gen_range(-1.0..1.0f64).round();
                            e.add_term(v, c);
                            mid += 5.0 * c;
                        }
                        m.leq(e.clone(), mid + 2.0);
                        m.leq(e, mid + rng.gen_range(2.0..6.0)); // duplicate lhs
                    }
                    _ => {
                        let mut e = LinExpr::new();
                        let mut mid = 0.0;
                        for &v in &vars {
                            let c = rng.gen_range(-2.0..2.0);
                            e.add_term(v, c);
                            mid += 5.0 * c;
                        }
                        m.geq(e, mid - rng.gen_range(0.0..4.0));
                    }
                }
            }
            let p = presolve(&m);
            let a = m.solve().unwrap();
            let b = p.solve().unwrap();
            assert_eq!(a.status(), b.status(), "trial {trial}");
            if a.status() == Status::Optimal {
                assert!(
                    (a.objective() - b.objective()).abs() < 1e-6 * (1.0 + a.objective().abs()),
                    "trial {trial}: {} vs {}",
                    a.objective(),
                    b.objective()
                );
            }
        }
    }

    #[test]
    fn kept_row_duals_map_back() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(2.0 * x + y);
        m.leq(LinExpr::from(x), 100.0); // singleton, removed (not binding anyway)
        let kept = m.geq(x + y, 5.0); // binding at the optimum
        let p = presolve(&m);
        let s = p.solve().unwrap();
        // The kept row's dual lands at its original index.
        assert!(s.dual(kept).abs() > 1e-9, "binding row should have nonzero dual");
        assert_eq!(s.duals().len(), 2);
    }
}
