//! Product-form (eta-file) basis updates for the revised simplex.
//!
//! After a pivot that brings column `a_in` into the basis at position
//! `p`, the new basis satisfies `B_new = B_old · E`, where `E` is the
//! identity with column `p` replaced by `w = B_old⁻¹·a_in`. Rather than
//! refactorizing, the solver appends the sparse eta vector `w` to a file
//! and replays it during every `ftran`/`btran`, so a pivot costs
//! O(nnz(w)) instead of O(m²). The file is cleared whenever the basis is
//! refactorized from scratch.

/// One product-form update: the pivot position and the sparse spike.
#[derive(Debug, Clone)]
struct Eta {
    /// Basis position replaced by this pivot.
    p: usize,
    /// Off-pivot spike entries `(i, w_i)` with `i != p`.
    entries: Vec<(usize, f64)>,
    /// Pivot entry `w_p` (always kept, never dropped).
    wp: f64,
}

/// An ordered file of eta updates since the last refactorization.
#[derive(Debug, Clone, Default)]
pub(crate) struct EtaFile {
    etas: Vec<Eta>,
}

impl EtaFile {
    /// An empty eta file. Production code reaches the eta file through the
    /// solver workspace (which uses `Default`); tests construct it directly.
    #[allow(dead_code)]
    pub(crate) fn new() -> Self {
        Self { etas: Vec::new() }
    }

    /// Number of updates accumulated since the last refactorization.
    pub(crate) fn len(&self) -> usize {
        self.etas.len()
    }

    /// Whether the file holds no updates.
    pub(crate) fn is_empty(&self) -> bool {
        self.etas.is_empty()
    }

    /// Drops all accumulated updates (called on refactorization).
    pub(crate) fn clear(&mut self) {
        self.etas.clear();
    }

    /// Records the update that replaced basis position `p` with the
    /// column whose basis representation is `w = B⁻¹·a_in`. Off-pivot
    /// entries smaller than `drop_tol` in magnitude are dropped to keep
    /// the file sparse; the pivot entry is always kept.
    pub(crate) fn push(&mut self, p: usize, w: &[f64], drop_tol: f64) {
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != p && v.abs() > drop_tol)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta { p, entries, wp: w[p] });
    }

    /// Applies the file to a forward solve: given `v = B₀⁻¹·b` (the
    /// LU-only solve), transforms it in place into `B⁻¹·b` for the
    /// current basis `B = B₀·E₁·…·E_k`.
    pub(crate) fn apply_ftran(&self, work: &mut [f64]) {
        for eta in &self.etas {
            let xp = work[eta.p] / eta.wp;
            work[eta.p] = xp;
            // postcard-analyze: allow(PA101) — exact-zero spike skip.
            if xp != 0.0 {
                for &(i, wi) in &eta.entries {
                    work[i] -= wi * xp;
                }
            }
        }
    }

    /// Applies the file to a transposed solve: transforms `c` in place
    /// into `E_k⁻ᵀ·…·E₁⁻ᵀ·c`, ready for the LU `btran`.
    pub(crate) fn apply_btran(&self, work: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut v = work[eta.p];
            for &(i, wi) in &eta.entries {
                v -= wi * work[i];
            }
            work[eta.p] = v / eta.wp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Multiplies the explicit eta matrix product E₁·…·E_k by `x`.
    fn apply_explicit(etas: &EtaFile, x: &[f64]) -> Vec<f64> {
        let mut v = x.to_vec();
        // B = E₁·…·E_k applied right-to-left: E_k·x first.
        for eta in etas.etas.iter().rev() {
            let xp = v[eta.p];
            let mut out = v.clone();
            out[eta.p] = eta.wp * xp;
            for &(i, wi) in &eta.entries {
                out[i] += wi * xp;
            }
            v = out;
        }
        v
    }

    #[test]
    fn ftran_inverts_the_eta_product() {
        let mut file = EtaFile::new();
        file.push(1, &[0.5, 2.0, -1.0, 0.0], 1e-12);
        file.push(3, &[0.0, 0.25, 1.5, 4.0], 1e-12);
        file.push(0, &[-2.0, 0.0, 0.3, 0.1], 1e-12);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        // Compute b = (E₁E₂E₃)·x, then check ftran recovers x from b.
        let b = apply_explicit(&file, &x);
        let mut z = b;
        file.apply_ftran(&mut z);
        for (got, want) in z.iter().zip(&x) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn btran_is_the_transposed_inverse() {
        let mut file = EtaFile::new();
        file.push(2, &[0.1, -0.4, 2.5, 0.0], 1e-12);
        file.push(0, &[3.0, 0.2, 0.0, -0.7], 1e-12);
        let c = vec![0.5, 1.5, -1.0, 2.0];
        let mut t = c.clone();
        file.apply_btran(&mut t);
        // Check (E₁E₂)ᵀ·t == c by applying the explicit product to basis
        // vectors: tᵀ·(E₁E₂·e_j) must equal c_j for every j.
        for j in 0..4 {
            let mut e = vec![0.0; 4];
            e[j] = 1.0;
            let col = apply_explicit(&file, &e);
            let dot: f64 = t.iter().zip(&col).map(|(a, b)| a * b).sum();
            assert!((dot - c[j]).abs() < 1e-10, "col {j}: {dot} vs {}", c[j]);
        }
    }

    #[test]
    fn drop_tolerance_prunes_noise_entries() {
        let mut file = EtaFile::new();
        file.push(0, &[2.0, 1e-15, 0.5], 1e-12);
        assert_eq!(file.etas[0].entries.len(), 1);
        assert_eq!(file.etas[0].entries[0].0, 2);
    }

    #[test]
    fn clear_empties_the_file() {
        let mut file = EtaFile::new();
        assert!(file.is_empty());
        file.push(0, &[1.0, 0.0], 1e-12);
        assert_eq!(file.len(), 1);
        file.clear();
        assert!(file.is_empty());
        // An empty file leaves vectors untouched.
        let mut v = vec![4.0, 5.0];
        file.apply_ftran(&mut v);
        file.apply_btran(&mut v);
        assert_eq!(v, vec![4.0, 5.0]);
    }
}
