//! The user-facing LP modeling layer.

use crate::error::LpError;
use crate::expr::{LinExpr, Variable};
use crate::simplex::{SimplexOptions, SimplexSolver};
use crate::solution::Solution;
use crate::standard::StandardForm;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `expr ≤ rhs`
    Leq,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Geq,
}

/// Handle to a constraint of a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    /// Dense 0-based index of this constraint within its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A stored linear constraint `expr ⋈ rhs` (the expression's constant part is
/// folded into `rhs` on ingestion).
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    pub(crate) expr: LinExpr,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

impl Constraint {
    /// The left-hand-side expression (constant-free).
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relation.
    pub fn relation(&self) -> Relation {
        self.relation
    }

    /// The right-hand side.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }
}

/// A linear program under construction.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug, Clone)]
pub struct Model {
    sense: Sense,
    objective: LinExpr,
    names: Vec<String>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            objective: LinExpr::new(),
            names: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Replaces the optimization sense (useful for lexicographic re-solves:
    /// clone the model, pin the primary objective with a constraint, then
    /// optimize a secondary objective in the other direction).
    pub fn set_sense(&mut self, sense: Sense) {
        self.sense = sense;
    }

    /// Adds a variable with the given bounds and returns its handle.
    ///
    /// Use `f64::NEG_INFINITY` / `f64::INFINITY` for free directions. Bounds
    /// are validated at solve time (so that building can stay infallible).
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Variable {
        let idx = self.names.len();
        self.names.push(name.into());
        self.lower.push(lower);
        self.upper.push(upper);
        Variable(idx)
    }

    /// Adds `count` variables sharing bounds, named `prefix[0..count)`.
    pub fn add_vars(
        &mut self,
        prefix: &str,
        count: usize,
        lower: f64,
        upper: f64,
    ) -> Vec<Variable> {
        (0..count).map(|i| self.add_var(format!("{prefix}[{i}]"), lower, upper)).collect()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: Variable) -> &str {
        &self.names[v.0]
    }

    /// `(lower, upper)` bounds of a variable.
    pub fn bounds(&self, v: Variable) -> (f64, f64) {
        (self.lower[v.0], self.upper[v.0])
    }

    /// Tightens (replaces) the bounds of an existing variable.
    pub fn set_bounds(&mut self, v: Variable, lower: f64, upper: f64) {
        self.lower[v.0] = lower;
        self.upper[v.0] = upper;
    }

    /// Replaces the right-hand side of an existing constraint, keeping its
    /// expression and relation.
    ///
    /// Note that [`Model::add_constraint`] folds the expression's constant
    /// part into the stored right-hand side at ingestion; the value set here
    /// replaces that folded result directly (stored expressions are
    /// constant-free). This is the mutation the slot-over-slot delta path
    /// uses: same constraint shape, new ledger-dependent right-hand side.
    pub fn set_rhs(&mut self, id: ConstraintId, rhs: f64) {
        self.constraints[id.0].rhs = rhs;
    }

    /// Sets the objective expression (replacing any previous one).
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>) {
        self.objective = expr.into();
    }

    /// The current objective expression.
    pub fn objective_expr(&self) -> &LinExpr {
        &self.objective
    }

    /// Adds `lhs ≤ rhs`.
    pub fn leq(&mut self, lhs: impl Into<LinExpr>, rhs: f64) -> ConstraintId {
        self.add_constraint(lhs.into(), Relation::Leq, rhs)
    }

    /// Adds `lhs ≥ rhs`.
    pub fn geq(&mut self, lhs: impl Into<LinExpr>, rhs: f64) -> ConstraintId {
        self.add_constraint(lhs.into(), Relation::Geq, rhs)
    }

    /// Adds `lhs = rhs`.
    pub fn eq(&mut self, lhs: impl Into<LinExpr>, rhs: f64) -> ConstraintId {
        self.add_constraint(lhs.into(), Relation::Eq, rhs)
    }

    /// Adds a constraint with an explicit relation.
    pub fn add_constraint(
        &mut self,
        lhs: impl Into<LinExpr>,
        relation: Relation,
        rhs: f64,
    ) -> ConstraintId {
        let mut expr = lhs.into();
        let rhs = rhs - expr.constant();
        expr.add_constant(-expr.constant());
        expr.compact();
        let id = ConstraintId(self.constraints.len());
        self.constraints.push(Constraint { expr, relation, rhs });
        id
    }

    /// Read access to a stored constraint.
    pub fn constraint(&self, id: ConstraintId) -> &Constraint {
        &self.constraints[id.0]
    }

    /// Iterates over all constraints with their ids.
    pub fn constraints(&self) -> impl Iterator<Item = (ConstraintId, &Constraint)> {
        self.constraints.iter().enumerate().map(|(i, c)| (ConstraintId(i), c))
    }

    /// Iterates over all variable handles of the model, in index order.
    pub fn variables(&self) -> impl Iterator<Item = Variable> {
        (0..self.names.len()).map(Variable)
    }

    /// Builds a column-wise view of the constraint matrix: entry `v` holds
    /// the `(constraint, coefficient)` pairs variable `v` appears in, with
    /// zero coefficients excluded. One sweep over every stored term; the
    /// static-analysis passes use this to reason about whole columns without
    /// re-scanning rows per variable. Terms referencing out-of-range
    /// variable handles are skipped (they are reported by
    /// [`Model::validate`] instead).
    pub fn columns(&self) -> Vec<Vec<(ConstraintId, f64)>> {
        let mut cols = vec![Vec::new(); self.names.len()];
        for (id, con) in self.constraints() {
            for (v, c) in con.expr().iter() {
                // postcard-analyze: allow(PA101) — exact-zero sparsity test.
                if c != 0.0 && v.0 < cols.len() {
                    cols[v.0].push((id, c));
                }
            }
        }
        cols
    }

    /// Validates the model (bounds, NaNs, handle ranges).
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found; see [`LpError`].
    pub fn validate(&self) -> Result<(), LpError> {
        if self.names.is_empty() {
            return Err(LpError::EmptyModel);
        }
        for i in 0..self.names.len() {
            let (lo, hi) = (self.lower[i], self.upper[i]);
            if lo.is_nan() || hi.is_nan() {
                return Err(LpError::NotANumber {
                    context: format!("bounds of `{}`", self.names[i]),
                });
            }
            if lo > hi {
                return Err(LpError::InvalidBounds {
                    name: self.names[i].clone(),
                    lower: lo,
                    upper: hi,
                });
            }
        }
        if self.objective.has_nan() {
            return Err(LpError::NotANumber { context: "objective".into() });
        }
        if let Some(mx) = self.objective.max_var_index() {
            if mx >= self.names.len() {
                return Err(LpError::UnknownVariable { index: mx, num_vars: self.names.len() });
            }
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if c.expr.has_nan() || c.rhs.is_nan() {
                return Err(LpError::NotANumber { context: format!("constraint #{i}") });
            }
            if let Some(mx) = c.expr.max_var_index() {
                if mx >= self.names.len() {
                    return Err(LpError::UnknownVariable { index: mx, num_vars: self.names.len() });
                }
            }
        }
        Ok(())
    }

    /// Solves the model with default [`SimplexOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`LpError`] for malformed models or numerical failure. Note
    /// that infeasibility/unboundedness are *not* errors — they are reported
    /// through [`Solution::status`].
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solves with explicit options.
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::solve`].
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<Solution, LpError> {
        self.solve_warm(options, None)
    }

    /// Solves with explicit options, warm-starting from a basis exported by
    /// a previous optimal solve ([`Solution::basis`]) when one is supplied.
    ///
    /// The basis is only an accelerator: when its dimensions do not match
    /// this model's standard form, or it is singular or infeasible for the
    /// new data, the solver silently falls back to a cold two-phase solve,
    /// so the result is identical (up to degenerate-optimum tie-breaking)
    /// to [`Model::solve_with`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::solve`].
    pub fn solve_warm(
        &self,
        options: &SimplexOptions,
        warm: Option<&crate::simplex::Basis>,
    ) -> Result<Solution, LpError> {
        self.validate()?;
        let sf = StandardForm::from_model(self);
        let solver = SimplexSolver::new(options.clone());
        let mut ws = crate::simplex::SolverWorkspace::new();
        let raw = solver.solve_warm(&sf, warm, &mut ws)?;
        Ok(sf.map_solution(self, raw))
    }

    /// Compiles the model's standard form once, for repeated re-solves of
    /// the same constraint shape with changing right-hand sides and bounds.
    ///
    /// See [`PreparedLp`] for the refresh/solve cycle. The one-shot
    /// [`Model::solve_warm`] rebuilds the standard form on every call; on
    /// large recurring models (the Postcard slot loop) that rebuild — not
    /// pivoting — dominates, and `prepare` + [`PreparedLp::refresh`]
    /// replaces it with an O(rows + nnz of changed rows) in-place update.
    ///
    /// # Errors
    ///
    /// Returns [`LpError`] when the model fails validation.
    pub fn prepare(&self) -> Result<PreparedLp, LpError> {
        self.validate()?;
        Ok(PreparedLp { sf: StandardForm::from_model(self) })
    }
}

/// A compiled standard form that survives across same-shaped re-solves.
///
/// Produced by [`Model::prepare`]. The intended cycle, one iteration per
/// slot of a rolling-horizon loop:
///
/// 1. Mutate the *same* model in place — only [`Model::set_rhs`] and
///    [`Model::set_bounds`]; expressions, relations, the objective, and
///    the variable/constraint counts must stay untouched.
/// 2. Call [`PreparedLp::refresh`]; a `false` return means the bound
///    structure changed and the caller must [`Model::prepare`] again.
/// 3. Call [`PreparedLp::solve_warm`] with the basis exported by the
///    previous solve and a persistent [`crate::SolverWorkspace`].
///
/// Because a refresh only rescales rows by ±1 and rewrites `b`, a basis
/// that was optimal (hence dual feasible) before the mutation stays dual
/// feasible, and the warm solve resumes with dual-simplex pivots instead
/// of a cold two-phase restart.
#[derive(Debug, Clone)]
pub struct PreparedLp {
    sf: StandardForm,
}

impl PreparedLp {
    /// Re-derives right-hand sides and bound shifts from `model` in place.
    ///
    /// Returns `false` when the form is no longer structurally valid for
    /// the model (a variable's bound classification changed); the form is
    /// then unusable and must be rebuilt with [`Model::prepare`].
    pub fn refresh(&mut self, model: &Model) -> bool {
        self.sf.refresh(model)
    }

    /// Solves against the prepared form, warm-starting from `warm` and
    /// reusing `ws`'s allocations.
    ///
    /// `model` must be the (possibly rhs/bounds-mutated) model this form
    /// was prepared from or last refreshed against — it supplies the
    /// objective evaluation and solution mapping.
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::solve`].
    pub fn solve_warm(
        &self,
        model: &Model,
        options: &SimplexOptions,
        warm: Option<&crate::simplex::Basis>,
        ws: &mut crate::simplex::SolverWorkspace,
    ) -> Result<Solution, LpError> {
        model.validate()?;
        let solver = SimplexSolver::new(options.clone());
        let raw = solver.solve_warm(&self.sf, warm, ws)?;
        Ok(self.sf.map_solution(model, raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Status;

    #[test]
    fn basic_maximize() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(3.0 * x + 2.0 * y);
        m.leq(x + y, 4.0);
        m.leq(x + 3.0 * y, 6.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), Status::Optimal);
        assert!((s.objective() - 12.0).abs() < 1e-6, "obj = {}", s.objective());
        assert!((s.value(x) - 4.0).abs() < 1e-6);
        assert!(s.value(y).abs() < 1e-6);
    }

    #[test]
    fn constant_in_constraint_folds_into_rhs() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        // x + 3 ≥ 5  ⇔  x ≥ 2
        m.geq(x + 3.0, 5.0);
        let s = m.solve().unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn invalid_bounds_rejected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 1.0, 0.0);
        m.set_objective(LinExpr::from(x));
        assert!(matches!(m.solve(), Err(LpError::InvalidBounds { .. })));
    }

    #[test]
    fn empty_model_rejected() {
        let m = Model::new(Sense::Minimize);
        assert!(matches!(m.solve(), Err(LpError::EmptyModel)));
    }

    #[test]
    fn nan_rejected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        m.set_objective(f64::NAN * x);
        assert!(matches!(m.solve(), Err(LpError::NotANumber { .. })));
    }

    #[test]
    fn add_vars_names() {
        let mut m = Model::new(Sense::Minimize);
        let vs = m.add_vars("f", 3, 0.0, 1.0);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.var_name(vs[2]), "f[2]");
    }

    #[test]
    fn prepared_refresh_tracks_rhs_and_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 1.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(2.0 * x + 3.0 * y);
        let cap = m.geq(x + y, 4.0);
        m.leq(x - y, 1.0);
        let mut prepared = m.prepare().unwrap();
        let mut ws = crate::SolverWorkspace::new();
        let first = prepared.solve_warm(&m, &SimplexOptions::default(), None, &mut ws).unwrap();
        assert_eq!(first.status(), crate::Status::Optimal);

        // Mutate rhs + a lower bound; the refreshed form must agree with a
        // from-scratch solve of the mutated model.
        m.set_rhs(cap, 7.0);
        m.set_bounds(x, 2.0, f64::INFINITY);
        assert!(prepared.refresh(&m));
        let warm =
            prepared.solve_warm(&m, &SimplexOptions::default(), first.basis(), &mut ws).unwrap();
        let cold = m.solve().unwrap();
        assert_eq!(warm.status(), crate::Status::Optimal);
        assert!(
            (warm.objective() - cold.objective()).abs() < 1e-9,
            "warm {} vs cold {}",
            warm.objective(),
            cold.objective()
        );
    }

    #[test]
    fn prepared_refresh_handles_rhs_sign_flips() {
        // The envelope-style row `x - y ≤ rhs` crosses zero: the internal
        // row must be re-oriented in place and still solve correctly.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(x + 2.0 * y);
        m.geq(x + y, 3.0);
        let env = m.leq(x - y, -1.0);
        let mut prepared = m.prepare().unwrap();
        let mut ws = crate::SolverWorkspace::new();
        let first = prepared.solve_warm(&m, &SimplexOptions::default(), None, &mut ws).unwrap();
        assert_eq!(first.status(), crate::Status::Optimal);
        for (rhs, label) in [(2.0, "neg->pos"), (-2.0, "pos->neg"), (0.0, "to zero")] {
            m.set_rhs(env, rhs);
            assert!(prepared.refresh(&m), "{label}");
            let warm = prepared
                .solve_warm(&m, &SimplexOptions::default(), first.basis(), &mut ws)
                .unwrap();
            let cold = m.solve().unwrap();
            assert_eq!(warm.status(), cold.status(), "{label}");
            assert!(
                (warm.objective() - cold.objective()).abs() < 1e-9,
                "{label}: warm {} vs cold {}",
                warm.objective(),
                cold.objective()
            );
        }
    }

    #[test]
    fn prepared_refresh_rejects_bound_reclassification() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        m.geq(LinExpr::from(x), 1.0);
        let mut prepared = m.prepare().unwrap();
        // Shifted → fixed: the column layout changed, refresh must refuse.
        m.set_bounds(x, 2.0, 2.0);
        assert!(!prepared.refresh(&m));
        // Shifted → gains a finite upper bound (needs a new ub row): refuse.
        let mut m2 = Model::new(Sense::Minimize);
        let x2 = m2.add_var("x", 0.0, f64::INFINITY);
        m2.set_objective(LinExpr::from(x2));
        m2.geq(LinExpr::from(x2), 1.0);
        let mut p2 = m2.prepare().unwrap();
        m2.set_bounds(x2, 0.0, 5.0);
        assert!(!p2.refresh(&m2));
    }

    #[test]
    fn constraint_accessors() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let id = m.leq(2.0 * x, 10.0);
        let c = m.constraint(id);
        assert_eq!(c.relation(), Relation::Leq);
        assert_eq!(c.rhs(), 10.0);
        assert_eq!(c.expr().coefficient(x), 2.0);
        assert_eq!(m.constraints().count(), 1);
    }
}
