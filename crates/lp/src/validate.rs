//! Independent verification of LP solutions.
//!
//! The solver's own arithmetic is never trusted by the test-suite: this
//! module re-checks a claimed optimal solution against the *model* from
//! first principles — primal feasibility, bound feasibility, and (via weak
//! duality on the internal standard form) optimality certificates.

use crate::model::{Model, Relation};
use crate::solution::{Solution, Status};

/// A violation found while checking a solution.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A variable value escapes its declared bounds by more than `excess`.
    Bound {
        /// Variable index.
        var: usize,
        /// Offending value.
        value: f64,
        /// Amount outside the bound interval.
        excess: f64,
    },
    /// A constraint is violated by `excess`.
    Constraint {
        /// Constraint index.
        index: usize,
        /// Left-hand-side value at the solution.
        lhs: f64,
        /// Right-hand side.
        rhs: f64,
        /// Violation magnitude.
        excess: f64,
    },
    /// The reported objective differs from the recomputed one.
    Objective {
        /// Objective stored in the solution.
        reported: f64,
        /// Objective recomputed from the model.
        recomputed: f64,
    },
}

/// Checks primal feasibility of `solution` for `model` within `tol`.
///
/// Returns all violations found (empty ⇒ feasible). Non-optimal solutions
/// (infeasible/unbounded status) trivially pass — there is nothing to check.
pub fn check_feasibility(model: &Model, solution: &Solution, tol: f64) -> Vec<Violation> {
    let mut out = Vec::new();
    if solution.status() != Status::Optimal {
        return out;
    }
    let x = solution.values();
    for (i, &v) in x.iter().enumerate().take(model.num_vars()) {
        let (lo, hi) = model.bounds(crate::Variable(i));
        let excess = (lo - v).max(v - hi).max(0.0);
        if excess > tol {
            out.push(Violation::Bound { var: i, value: v, excess });
        }
    }
    for (id, con) in model.constraints() {
        let lhs = con.expr().evaluate(x);
        let rhs = con.rhs();
        let excess = match con.relation() {
            Relation::Leq => lhs - rhs,
            Relation::Geq => rhs - lhs,
            Relation::Eq => (lhs - rhs).abs(),
        };
        if excess > tol {
            out.push(Violation::Constraint { index: id.index(), lhs, rhs, excess });
        }
    }
    let recomputed = model.objective_expr().evaluate(x);
    if (recomputed - solution.objective()).abs() > tol * (1.0 + recomputed.abs()) {
        out.push(Violation::Objective { reported: solution.objective(), recomputed });
    }
    out
}

/// `true` when `solution` is primal feasible for `model` within `tol`.
pub fn is_feasible(model: &Model, solution: &Solution, tol: f64) -> bool {
    check_feasibility(model, solution, tol).is_empty()
}

/// Verifies an optimality certificate by comparing against an independently
/// supplied feasible objective value.
///
/// For a minimization problem, any feasible point gives an *upper* bound on
/// the optimum, so `solution.objective() ≤ other_objective + tol` must hold
/// (mirrored for maximization). This is how the tests certify optimality
/// against brute-force vertex enumeration.
pub fn at_least_as_good(
    model: &Model,
    solution: &Solution,
    other_objective: f64,
    tol: f64,
) -> bool {
    match model.sense() {
        crate::Sense::Minimize => solution.objective() <= other_objective + tol,
        crate::Sense::Maximize => solution.objective() >= other_objective - tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Sense};

    fn simple_model() -> (Model, crate::Variable, crate::Variable) {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(3.0 * x + 2.0 * y);
        m.leq(x + y, 4.0);
        m.leq(x + 3.0 * y, 6.0);
        (m, x, y)
    }

    #[test]
    fn optimal_solution_passes() {
        let (m, _, _) = simple_model();
        let s = m.solve().unwrap();
        assert!(is_feasible(&m, &s, 1e-7));
    }

    #[test]
    fn doctored_solution_fails() {
        let (m, _, _) = simple_model();
        let s = m.solve().unwrap();
        // Re-build a "solution" with an out-of-bounds value by evaluating a
        // model with looser constraints and checking against the original.
        let mut m2 = Model::new(Sense::Maximize);
        let x = m2.add_var("x", 0.0, f64::INFINITY);
        let y = m2.add_var("y", 0.0, f64::INFINITY);
        m2.set_objective(3.0 * x + 2.0 * y);
        m2.leq(x + y, 100.0);
        m2.leq(x + 3.0 * y, 100.0);
        let s2 = m2.solve().unwrap();
        assert!(!is_feasible(&m, &s2, 1e-7));
        assert!(is_feasible(&m2, &s2, 1e-7));
        drop(s);
    }

    #[test]
    fn at_least_as_good_directional() {
        let (m, _, _) = simple_model();
        let s = m.solve().unwrap(); // optimum 12 (maximize)
        assert!(at_least_as_good(&m, &s, 11.0, 1e-9));
        assert!(!at_least_as_good(&m, &s, 13.0, 1e-9));
    }
}
