//! # postcard-lp — a pure-Rust linear programming substrate
//!
//! This crate provides everything the [Postcard](https://doi.org/10.1109/ICDCS.2012.39)
//! reproduction needs to state and solve linear programs:
//!
//! * a small **modeling layer** ([`Model`], [`Variable`], [`LinExpr`]) for
//!   building problems with named variables, bounds, and `≤ / = / ≥`
//!   constraints;
//! * a **two-phase sparse revised simplex** solver ([`SimplexSolver`])
//!   pricing directly against the CSC constraint matrix, with the basis held
//!   as a sparse LU factorization plus product-form (eta-file) updates,
//!   periodic refactorization, and warm starts from a previously exported
//!   [`Basis`];
//! * **solution objects** ([`Solution`]) carrying primal values, dual values,
//!   reduced costs, and the termination [`Status`];
//! * an independent **verifier** ([`validate`]) used by the test-suite to
//!   check primal/dual feasibility and strong duality of returned solutions.
//!
//! The Postcard paper solves its convex program with MATLAB's `fmincon`; in
//! this reproduction the convex objective is linearized exactly (see the
//! repository `DESIGN.md`), so a robust LP solver is all that is required.
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x + 3y ≤ 6`, `x, y ≥ 0`:
//!
//! ```
//! use postcard_lp::{Model, Sense};
//!
//! # fn main() -> Result<(), postcard_lp::LpError> {
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY);
//! let y = m.add_var("y", 0.0, f64::INFINITY);
//! m.set_objective(3.0 * x + 2.0 * y);
//! m.leq(x + y, 4.0);
//! m.leq(x + 3.0 * y, 6.0);
//! let sol = m.solve()?;
//! assert!((sol.objective() - 12.0).abs() < 1e-6); // x=4, y=0
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dense;
mod error;
mod eta;
mod expr;
mod factor;
mod model;
pub mod mps;
pub mod presolve;
mod simplex;
mod solution;
mod sparse;
mod standard;
pub mod validate;

pub use dense::{DenseMatrix, LuFactors};
pub use error::LpError;
pub use expr::{LinExpr, Variable};
pub use model::{Constraint, ConstraintId, Model, PreparedLp, Relation, Sense};
pub use simplex::{Basis, SimplexOptions, SimplexSolver, SolverWorkspace};
pub use solution::{Solution, Status};
pub use sparse::CscMatrix;

/// Default numeric tolerance used across the solver for feasibility and
/// optimality tests.
pub const DEFAULT_TOL: f64 = 1e-7;
