//! Conversion of a [`Model`] into the simplex computational form
//! `min c·x  s.t.  A·x = b, x ≥ 0, b ≥ 0`.
//!
//! Transformations applied, in order:
//!
//! 1. **Fixed variables** (`lower == upper`) are substituted out.
//! 2. **Lower-bounded variables** are shifted: `x = lower + x'`, `x' ≥ 0`.
//! 3. **Upper-only variables** are mirrored: `x = upper − x'`, `x' ≥ 0`.
//! 4. **Free variables** are split: `x = x⁺ − x⁻`.
//! 5. Finite **upper bounds** of shifted variables become explicit
//!    `x' ≤ upper − lower` rows.
//! 6. Each row gets a **slack** (`≤`: +1, `≥`: −1, `=`: none) turning it into
//!    an equality, and rows with negative right-hand sides are negated.
//! 7. A **maximization** objective is negated (tracked by `obj_sign`).

use crate::expr::LinExpr;
use crate::model::{Model, Relation};
use crate::simplex::RawSolution;
use crate::solution::{Solution, Status};
use crate::sparse::{CscBuilder, CscMatrix};

/// What an internal (structural or slack) column represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ColSource {
    /// `x_var = shift + x'`.
    Shifted { var: usize, shift: f64 },
    /// `x_var = ub − x'`.
    Mirrored { var: usize, ub: f64 },
    /// Positive part of a free variable.
    FreePos { var: usize },
    /// Negative part of a free variable.
    FreeNeg { var: usize },
    /// Slack of internal row `row`.
    Slack { row: usize },
}

/// The computational standard form plus all bookkeeping needed to map a raw
/// simplex solution back onto the originating model.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm {
    /// Constraint matrix over all columns (structural then slack).
    pub a: CscMatrix,
    /// Right-hand sides, all non-negative.
    pub b: Vec<f64>,
    /// Minimization costs per column.
    pub c: Vec<f64>,
    /// Total number of columns.
    pub n_cols: usize,
    /// Number of rows.
    pub m: usize,
    /// `+1` for minimize, `−1` for maximize (costs were negated).
    pub obj_sign: f64,
    /// Column provenance, indexed by column.
    pub col_source: Vec<ColSource>,
    /// Internal row index per model constraint (`None` for vacuous rows).
    pub row_of_constraint: Vec<Option<usize>>,
    /// `+1`/`−1` per internal row: whether the row kept its orientation.
    pub row_sign: Vec<f64>,
    /// Substituted value per model variable (fixed variables only).
    pub fixed_values: Vec<Option<f64>>,
    /// Slack column per internal row, if the row has one.
    pub slack_of_row: Vec<Option<usize>>,
    /// Coefficient (+1/−1, post-negation) of that slack in its row.
    pub slack_coeff: Vec<f64>,
    /// Column layout per model variable (the inverse of `col_source`),
    /// kept so [`StandardForm::refresh`] can re-derive shifts in place.
    pub cols_of_var: Vec<VarCols>,
    /// `(internal row, model variable)` per explicit upper-bound row, in
    /// row order; lets `refresh` recompute `ub − lb` right-hand sides.
    pub ub_rows: Vec<(usize, usize)>,
    /// Storage indices of `a`'s entries grouped by row, built lazily on the
    /// first `refresh` (empty until then); lets a row be rescaled in place.
    row_entries: Vec<Vec<usize>>,
    /// A vacuous constraint (`0 ⋈ rhs`) was violated — the model is
    /// infeasible regardless of the simplex.
    pub trivially_infeasible: bool,
}

/// Terms of a model expression rewritten over standard columns, plus the
/// right-hand-side correction accumulated from substitutions.
fn rewrite_terms(
    expr: &LinExpr,
    cols_of_var: &[VarCols],
    fixed: &[Option<f64>],
) -> (Vec<(usize, f64)>, f64) {
    let mut terms: Vec<(usize, f64)> = Vec::with_capacity(expr.len() * 2);
    let mut rhs_delta = 0.0;
    for (v, coef) in expr.iter() {
        // postcard-analyze: allow(PA101) — exact-zero terms are not emitted.
        if coef == 0.0 {
            continue;
        }
        if let Some(val) = fixed[v.index()] {
            rhs_delta += coef * val;
            continue;
        }
        match cols_of_var[v.index()] {
            VarCols::Shifted { col, shift } => {
                terms.push((col, coef));
                rhs_delta += coef * shift;
            }
            VarCols::Mirrored { col, ub } => {
                terms.push((col, -coef));
                rhs_delta += coef * ub;
            }
            VarCols::Free { pos, neg } => {
                terms.push((pos, coef));
                terms.push((neg, -coef));
            }
            VarCols::Fixed => unreachable!("fixed vars handled above"),
        }
    }
    (terms, rhs_delta)
}

/// Column layout for one model variable.
#[derive(Debug, Clone, Copy)]
pub(crate) enum VarCols {
    Shifted { col: usize, shift: f64 },
    Mirrored { col: usize, ub: f64 },
    Free { pos: usize, neg: usize },
    Fixed,
}

impl StandardForm {
    /// Builds the standard form for a validated model.
    pub fn from_model(model: &Model) -> Self {
        let nv = model.num_vars();
        let mut fixed_values: Vec<Option<f64>> = vec![None; nv];
        let mut cols_of_var: Vec<VarCols> = Vec::with_capacity(nv);
        let mut col_source: Vec<ColSource> = Vec::new();
        // Pending upper-bound rows: (column, range).
        let mut ub_rows: Vec<(usize, f64)> = Vec::new();

        for (i, fixed) in fixed_values.iter_mut().enumerate() {
            let (lo, hi) = model.bounds(crate::Variable(i));
            if lo.is_finite() && hi.is_finite() && (hi - lo).abs() <= 1e-12 {
                *fixed = Some(lo);
                cols_of_var.push(VarCols::Fixed);
            } else if lo.is_finite() {
                let col = col_source.len();
                col_source.push(ColSource::Shifted { var: i, shift: lo });
                cols_of_var.push(VarCols::Shifted { col, shift: lo });
                if hi.is_finite() {
                    ub_rows.push((col, hi - lo));
                }
            } else if hi.is_finite() {
                let col = col_source.len();
                col_source.push(ColSource::Mirrored { var: i, ub: hi });
                cols_of_var.push(VarCols::Mirrored { col, ub: hi });
            } else {
                let pos = col_source.len();
                col_source.push(ColSource::FreePos { var: i });
                let neg = col_source.len();
                col_source.push(ColSource::FreeNeg { var: i });
                cols_of_var.push(VarCols::Free { pos, neg });
            }
        }
        let n_struct = col_source.len();

        // Rewrite constraints over structural columns.
        struct PendingRow {
            terms: Vec<(usize, f64)>,
            relation: Relation,
            rhs: f64,
        }
        let mut rows: Vec<PendingRow> = Vec::new();
        let mut row_of_constraint: Vec<Option<usize>> = Vec::with_capacity(model.num_constraints());
        let mut trivially_infeasible = false;

        for (_, con) in model.constraints() {
            let (terms, rhs_delta) = rewrite_terms(&con.expr, &cols_of_var, &fixed_values);
            let rhs = con.rhs() - rhs_delta;
            if terms.iter().all(|&(_, c)| c.abs() <= 1e-14) {
                // Vacuous row `0 ⋈ rhs`: verify and skip.
                let ok = match con.relation() {
                    Relation::Leq => rhs >= -1e-9,
                    Relation::Geq => rhs <= 1e-9,
                    Relation::Eq => rhs.abs() <= 1e-9,
                };
                if !ok {
                    trivially_infeasible = true;
                }
                row_of_constraint.push(None);
                continue;
            }
            row_of_constraint.push(Some(rows.len()));
            rows.push(PendingRow { terms, relation: con.relation(), rhs });
        }
        let mut ub_row_ids: Vec<(usize, usize)> = Vec::with_capacity(ub_rows.len());
        for (col, range) in ub_rows {
            let var = match col_source[col] {
                ColSource::Shifted { var, .. } => var,
                _ => unreachable!("ub rows are only added for shifted columns"),
            };
            ub_row_ids.push((rows.len(), var));
            rows.push(PendingRow { terms: vec![(col, 1.0)], relation: Relation::Leq, rhs: range });
        }

        let m = rows.len();
        // Assign slack columns.
        let mut slack_of_row: Vec<Option<usize>> = vec![None; m];
        let mut next_col = n_struct;
        for (r, row) in rows.iter().enumerate() {
            if row.relation != Relation::Eq {
                slack_of_row[r] = Some(next_col);
                col_source.push(ColSource::Slack { row: r });
                next_col += 1;
            }
        }
        let n_cols = next_col;

        // Assemble the matrix with row negation for b ≥ 0.
        let mut builder = CscBuilder::new(m, n_cols);
        let mut b = vec![0.0; m];
        let mut row_sign = vec![1.0; m];
        let mut slack_coeff = vec![0.0; m];
        for (r, row) in rows.iter().enumerate() {
            let negate = row.rhs < 0.0;
            let sign = if negate { -1.0 } else { 1.0 };
            row_sign[r] = sign;
            b[r] = sign * row.rhs;
            for &(col, coef) in &row.terms {
                builder.push(r, col, sign * coef);
            }
            if let Some(scol) = slack_of_row[r] {
                let base = match row.relation {
                    Relation::Leq => 1.0,
                    Relation::Geq => -1.0,
                    Relation::Eq => unreachable!(),
                };
                slack_coeff[r] = sign * base;
                builder.push(r, scol, sign * base);
            }
        }
        let a = builder.build();

        // Costs.
        let obj_sign = match model.sense() {
            crate::Sense::Minimize => 1.0,
            crate::Sense::Maximize => -1.0,
        };
        let mut c = vec![0.0; n_cols];
        let (obj_terms, _) = rewrite_terms(model.objective_expr(), &cols_of_var, &fixed_values);
        for (col, coef) in obj_terms {
            c[col] += obj_sign * coef;
        }

        StandardForm {
            a,
            b,
            c,
            n_cols,
            m,
            obj_sign,
            col_source,
            row_of_constraint,
            row_sign,
            fixed_values,
            slack_of_row,
            slack_coeff,
            cols_of_var,
            ub_rows: ub_row_ids,
            row_entries: Vec::new(),
            trivially_infeasible,
        }
    }

    /// Right-hand-side correction an expression accumulates from the stored
    /// substitutions (fixed values, shifts, mirrors) — the refresh-time
    /// counterpart of the `rhs_delta` computed by [`rewrite_terms`].
    fn rhs_delta_of(&self, expr: &LinExpr) -> f64 {
        let mut delta = 0.0;
        for (v, coef) in expr.iter() {
            if let Some(val) = self.fixed_values[v.index()] {
                delta += coef * val;
                continue;
            }
            match self.cols_of_var[v.index()] {
                VarCols::Shifted { shift, .. } => delta += coef * shift,
                VarCols::Mirrored { ub, .. } => delta += coef * ub,
                VarCols::Free { .. } | VarCols::Fixed => {}
            }
        }
        delta
    }

    /// Builds the row-oriented view of `a`'s storage once; later refreshes
    /// reuse it to rescale rows in place.
    fn ensure_row_entries(&mut self) {
        if !self.row_entries.is_empty() || self.a.nnz() == 0 {
            return;
        }
        let mut entries = vec![Vec::new(); self.m];
        self.a.for_each_entry(|idx, r, _| entries[r].push(idx));
        self.row_entries = entries;
    }

    /// In-place refresh after the caller mutated **only** constraint
    /// right-hand sides ([`Model::set_rhs`]) and variable bounds
    /// ([`Model::set_bounds`]) of the model this form was built from.
    /// Constraint expressions, relations and counts, the objective, and the
    /// variable count must be untouched — the delta-formulation layer
    /// guarantees this, and it is not re-verified here.
    ///
    /// Right-hand sides and bound shifts are recomputed; a raw right-hand
    /// side that crossed zero flips its row's orientation by rescaling the
    /// stored row by −1 in place (keeping `b ≥ 0`, which the cold path's
    /// initial slack basis requires). A ±1 row scaling leaves `B⁻¹A` and
    /// every reduced cost exactly invariant — `B` picks up the same
    /// diagonal flip as `A` and `b` — so a basis that was dual feasible
    /// before the refresh still is after it, which is what lets the dual
    /// simplex resume from the previous optimum. Costs need no recompute:
    /// `c` depends only on objective coefficients and column kinds, both
    /// unchanged by bound/rhs edits.
    ///
    /// Returns `false` — form left unusable, the caller must rebuild from
    /// scratch — when a variable's bound classification changed
    /// (fixed/shifted/mirrored/free, or a finite upper bound appeared or
    /// disappeared), since that would change the column/row layout.
    pub fn refresh(&mut self, model: &Model) -> bool {
        if model.num_vars() != self.cols_of_var.len()
            || model.num_constraints() != self.row_of_constraint.len()
        {
            return false;
        }
        let mut has_ub_row = vec![false; self.cols_of_var.len()];
        for &(_, var) in &self.ub_rows {
            has_ub_row[var] = true;
        }
        // Re-classify every variable; a kind change invalidates the layout.
        for (i, &had_ub_row) in has_ub_row.iter().enumerate() {
            let (lo, hi) = model.bounds(crate::Variable(i));
            let fixed = lo.is_finite() && hi.is_finite() && (hi - lo).abs() <= 1e-12;
            match self.cols_of_var[i] {
                VarCols::Fixed => {
                    if !fixed {
                        return false;
                    }
                    self.fixed_values[i] = Some(lo);
                }
                VarCols::Shifted { col, .. } => {
                    if fixed || !lo.is_finite() || hi.is_finite() != had_ub_row {
                        return false;
                    }
                    self.cols_of_var[i] = VarCols::Shifted { col, shift: lo };
                    self.col_source[col] = ColSource::Shifted { var: i, shift: lo };
                }
                VarCols::Mirrored { col, .. } => {
                    if fixed || lo.is_finite() || !hi.is_finite() {
                        return false;
                    }
                    self.cols_of_var[i] = VarCols::Mirrored { col, ub: hi };
                    self.col_source[col] = ColSource::Mirrored { var: i, ub: hi };
                }
                VarCols::Free { .. } => {
                    if lo.is_finite() || hi.is_finite() {
                        return false;
                    }
                }
            }
        }
        // Recompute raw (pre-orientation) right-hand sides per internal row,
        // re-verifying vacuous rows against the new values.
        self.trivially_infeasible = false;
        let mut raw_rhs = vec![0.0; self.m];
        for (ci, (_, con)) in model.constraints().enumerate() {
            let raw = con.rhs() - self.rhs_delta_of(&con.expr);
            match self.row_of_constraint[ci] {
                Some(r) => raw_rhs[r] = raw,
                None => {
                    let ok = match con.relation() {
                        Relation::Leq => raw >= -1e-9,
                        Relation::Geq => raw <= 1e-9,
                        Relation::Eq => raw.abs() <= 1e-9,
                    };
                    if !ok {
                        self.trivially_infeasible = true;
                    }
                }
            }
        }
        for &(r, var) in &self.ub_rows {
            let (lo, hi) = model.bounds(crate::Variable(var));
            raw_rhs[r] = hi - lo;
        }
        // Apply, flipping row orientation in place where a sign crossed 0.
        self.ensure_row_entries();
        let entries = std::mem::take(&mut self.row_entries);
        for (r, &raw) in raw_rhs.iter().enumerate() {
            let was_negated = self.row_sign[r] < 0.0;
            let now_negated = raw < 0.0;
            if was_negated != now_negated {
                let values = self.a.values_mut();
                for &idx in &entries[r] {
                    values[idx] = -values[idx];
                }
                self.row_sign[r] = if now_negated { -1.0 } else { 1.0 };
                self.slack_coeff[r] = -self.slack_coeff[r];
            }
            self.b[r] = self.row_sign[r] * raw;
        }
        self.row_entries = entries;
        true
    }

    /// Maps a raw simplex solution back into model space.
    pub fn map_solution(&self, model: &Model, raw: RawSolution) -> Solution {
        let nv = model.num_vars();
        match raw.status {
            Status::Optimal => {
                let mut values = vec![0.0; nv];
                for (i, fv) in self.fixed_values.iter().enumerate() {
                    if let Some(v) = fv {
                        values[i] = *v;
                    }
                }
                for (col, src) in self.col_source.iter().enumerate() {
                    let xv = raw.x[col];
                    match *src {
                        ColSource::Shifted { var, shift } => values[var] = shift + xv,
                        ColSource::Mirrored { var, ub } => values[var] = ub - xv,
                        ColSource::FreePos { var } => values[var] += xv,
                        ColSource::FreeNeg { var } => values[var] -= xv,
                        ColSource::Slack { .. } => {}
                    }
                }
                let objective = model.objective_expr().evaluate(&values);
                let mut duals = vec![0.0; model.num_constraints()];
                for (ci, row) in self.row_of_constraint.iter().enumerate() {
                    if let Some(r) = *row {
                        duals[ci] = self.obj_sign * self.row_sign[r] * raw.y[r];
                    }
                }
                Solution::new(
                    Status::Optimal,
                    objective,
                    values,
                    duals,
                    raw.iterations,
                    raw.dual_iterations,
                    raw.basis,
                )
            }
            Status::Infeasible => Solution::new(
                Status::Infeasible,
                f64::NAN,
                vec![0.0; nv],
                vec![0.0; model.num_constraints()],
                raw.iterations,
                raw.dual_iterations,
                None,
            ),
            Status::Unbounded => {
                let obj = match model.sense() {
                    crate::Sense::Minimize => f64::NEG_INFINITY,
                    crate::Sense::Maximize => f64::INFINITY,
                };
                Solution::new(
                    Status::Unbounded,
                    obj,
                    vec![0.0; nv],
                    vec![0.0; model.num_constraints()],
                    raw.iterations,
                    raw.dual_iterations,
                    None,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Sense};

    #[test]
    fn shifts_and_slacks() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 2.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        m.leq(LinExpr::from(x), 10.0);
        let sf = StandardForm::from_model(&m);
        // One structural + one slack column; one row; rhs shifted to 8.
        assert_eq!(sf.n_cols, 2);
        assert_eq!(sf.m, 1);
        assert!((sf.b[0] - 8.0).abs() < 1e-12);
        assert_eq!(sf.slack_coeff[0], 1.0);
    }

    #[test]
    fn upper_bound_becomes_row() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 5.0);
        m.set_objective(LinExpr::from(x));
        let sf = StandardForm::from_model(&m);
        assert_eq!(sf.m, 1); // the bound row
        assert!((sf.b[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn free_variable_splits() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        m.eq(LinExpr::from(x), -3.0);
        let sf = StandardForm::from_model(&m);
        // pos + neg columns, no slack (equality).
        assert_eq!(sf.n_cols, 2);
        // Row was negated to keep b ≥ 0.
        assert!((sf.b[0] - 3.0).abs() < 1e-12);
        assert_eq!(sf.row_sign[0], -1.0);
    }

    #[test]
    fn fixed_variable_substituted() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 4.0, 4.0);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(y));
        m.geq(x + y, 10.0); // ⇒ y ≥ 6
        let sf = StandardForm::from_model(&m);
        assert_eq!(sf.fixed_values[0], Some(4.0));
        assert!((sf.b[0] - 6.0).abs() < 1e-12);
        let sol = m.solve().unwrap();
        assert!((sol.value(y) - 6.0).abs() < 1e-7);
        assert!((sol.value(x) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn vacuous_violated_row_flags_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 1.0, 1.0);
        m.set_objective(LinExpr::from(x));
        m.geq(LinExpr::from(x), 5.0); // 1 ≥ 5: vacuous after substitution, violated
        let sf = StandardForm::from_model(&m);
        assert!(sf.trivially_infeasible);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status(), Status::Infeasible);
    }

    #[test]
    fn mirrored_variable_maps_back() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", f64::NEG_INFINITY, 7.0);
        m.set_objective(LinExpr::from(x));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert!((sol.value(x) - 7.0).abs() < 1e-9);
    }
}
