//! Variables and sparse linear expressions.
//!
//! [`Variable`] is a lightweight handle into a [`crate::Model`];
//! [`LinExpr`] is a sparse affine expression `Σ cᵢ·xᵢ + k` supporting the
//! natural `+`, `-`, `*` operator syntax:
//!
//! ```
//! use postcard_lp::{Model, Sense};
//! let mut m = Model::new(Sense::Minimize);
//! let x = m.add_var("x", 0.0, 10.0);
//! let y = m.add_var("y", 0.0, 10.0);
//! let e = 2.0 * x - y + 3.0;
//! assert_eq!(e.coefficient(x), 2.0);
//! assert_eq!(e.coefficient(y), -1.0);
//! assert_eq!(e.constant(), 3.0);
//! ```

use std::collections::BTreeMap;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A handle to a decision variable of a [`crate::Model`].
///
/// Handles are cheap to copy and are only meaningful for the model that
/// created them; using a handle with a different model yields
/// [`crate::LpError::UnknownVariable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Variable(pub(crate) usize);

impl Variable {
    /// The index of this variable within its model (dense, 0-based).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A sparse affine expression `Σ cᵢ·xᵢ + constant`.
///
/// Terms are stored keyed by variable so repeated additions of the same
/// variable merge coefficients; zero coefficients are retained until
/// [`LinExpr::compact`] is called (the solver compacts on ingestion).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: BTreeMap<Variable, f64>,
    constant: f64,
}

impl LinExpr {
    /// Creates the zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an expression consisting of a single term `coef · var`.
    pub fn term(var: Variable, coef: f64) -> Self {
        let mut e = Self::new();
        e.add_term(var, coef);
        e
    }

    /// Creates a constant expression.
    pub fn constant_expr(value: f64) -> Self {
        Self { terms: BTreeMap::new(), constant: value }
    }

    /// Adds `coef · var` to the expression, merging with any existing term.
    pub fn add_term(&mut self, var: Variable, coef: f64) -> &mut Self {
        *self.terms.entry(var).or_insert(0.0) += coef;
        self
    }

    /// Adds a constant offset.
    pub fn add_constant(&mut self, value: f64) -> &mut Self {
        self.constant += value;
        self
    }

    /// The coefficient of `var` (0 if absent).
    pub fn coefficient(&self, var: Variable) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The constant offset of the expression.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Number of stored (possibly zero) terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Variable, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Removes terms with exactly-zero coefficients.
    pub fn compact(&mut self) {
        // postcard-analyze: allow(PA101) — bit-exact zero removal is the point.
        self.terms.retain(|_, c| *c != 0.0);
    }

    /// Evaluates the expression on a dense assignment indexed by variable.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range for `values`.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * values[v.0]).sum::<f64>()
    }

    /// Returns `true` if any coefficient or the constant is NaN.
    pub fn has_nan(&self) -> bool {
        self.constant.is_nan() || self.terms.values().any(|c| c.is_nan())
    }

    /// Largest variable index referenced, if any.
    pub fn max_var_index(&self) -> Option<usize> {
        self.terms.keys().next_back().map(|v| v.0)
    }
}

impl From<Variable> for LinExpr {
    fn from(v: Variable) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant_expr(c)
    }
}

// --- operator implementations -------------------------------------------------

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            *self.terms.entry(v).or_insert(0.0) += c;
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            *self.terms.entry(v).or_insert(0.0) += c;
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        *self += -rhs;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: LinExpr) -> LinExpr {
        rhs * self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Add<LinExpr> for f64 {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        rhs + self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: f64) -> LinExpr {
        self + (-rhs)
    }
}

impl Sub<LinExpr> for f64 {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        -rhs + self
    }
}

// Variable-involving operators delegate to LinExpr.

impl Add<Variable> for Variable {
    type Output = LinExpr;
    fn add(self, rhs: Variable) -> LinExpr {
        LinExpr::from(self) + LinExpr::from(rhs)
    }
}

impl Sub<Variable> for Variable {
    type Output = LinExpr;
    fn sub(self, rhs: Variable) -> LinExpr {
        LinExpr::from(self) - LinExpr::from(rhs)
    }
}

impl Add<LinExpr> for Variable {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Add<Variable> for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: Variable) -> LinExpr {
        self + LinExpr::from(rhs)
    }
}

impl Sub<Variable> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: Variable) -> LinExpr {
        self - LinExpr::from(rhs)
    }
}

impl Sub<LinExpr> for Variable {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Mul<Variable> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: Variable) -> LinExpr {
        LinExpr::term(rhs, self)
    }
}

impl Mul<f64> for Variable {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        LinExpr::term(self, rhs)
    }
}

impl Add<f64> for Variable {
    type Output = LinExpr;
    fn add(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Sub<f64> for Variable {
    type Output = LinExpr;
    fn sub(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Neg for Variable {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr::term(self, -1.0)
    }
}

impl Sum for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        iter.fold(LinExpr::new(), |acc, e| acc + e)
    }
}

impl Extend<(Variable, f64)> for LinExpr {
    fn extend<T: IntoIterator<Item = (Variable, f64)>>(&mut self, iter: T) {
        for (v, c) in iter {
            self.add_term(v, c);
        }
    }
}

impl FromIterator<(Variable, f64)> for LinExpr {
    fn from_iter<T: IntoIterator<Item = (Variable, f64)>>(iter: T) -> Self {
        let mut e = LinExpr::new();
        e.extend(iter);
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Variable {
        Variable(i)
    }

    #[test]
    fn term_merging() {
        let e = LinExpr::term(v(0), 1.0) + LinExpr::term(v(0), 2.5);
        assert_eq!(e.coefficient(v(0)), 3.5);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn operators_compose() {
        let e = 2.0 * v(0) + v(1) - 0.5 * v(2) + 7.0;
        assert_eq!(e.coefficient(v(0)), 2.0);
        assert_eq!(e.coefficient(v(1)), 1.0);
        assert_eq!(e.coefficient(v(2)), -0.5);
        assert_eq!(e.constant(), 7.0);
    }

    #[test]
    fn negation_and_subtraction() {
        let e = v(0) - v(1);
        let n = -e.clone();
        assert_eq!(n.coefficient(v(0)), -1.0);
        assert_eq!(n.coefficient(v(1)), 1.0);
        assert_eq!((e - LinExpr::term(v(0), 1.0)).coefficient(v(0)), 0.0);
    }

    #[test]
    fn evaluate_matches_hand_computation() {
        let e = 2.0 * v(0) + 3.0 * v(2) - 1.0;
        assert_eq!(e.evaluate(&[1.0, 99.0, 2.0]), 2.0 + 6.0 - 1.0);
    }

    #[test]
    fn sum_of_expressions() {
        let total: LinExpr = (0..4).map(|i| LinExpr::term(v(i), i as f64)).sum();
        assert_eq!(total.coefficient(v(3)), 3.0);
        assert_eq!(total.coefficient(v(0)), 0.0);
    }

    #[test]
    fn compact_drops_zeros() {
        let mut e = v(0) + v(1) - v(1);
        assert_eq!(e.len(), 2);
        e.compact();
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let e: LinExpr = vec![(v(0), 1.0), (v(1), 2.0), (v(0), 3.0)].into_iter().collect();
        assert_eq!(e.coefficient(v(0)), 4.0);
        assert_eq!(e.coefficient(v(1)), 2.0);
    }

    #[test]
    fn nan_detection() {
        let mut e = LinExpr::term(v(0), 1.0);
        assert!(!e.has_nan());
        e.add_constant(f64::NAN);
        assert!(e.has_nan());
    }

    #[test]
    fn scalar_on_both_sides() {
        let a = 1.0 + LinExpr::from(v(0));
        let b = LinExpr::from(v(0)) + 1.0;
        assert_eq!(a, b);
        let c = 5.0 - LinExpr::from(v(0));
        assert_eq!(c.coefficient(v(0)), -1.0);
        assert_eq!(c.constant(), 5.0);
    }

    #[test]
    fn max_var_index() {
        let e = v(3) + v(7);
        assert_eq!(e.max_var_index(), Some(7));
        assert_eq!(LinExpr::new().max_var_index(), None);
    }
}
