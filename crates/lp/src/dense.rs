//! Dense matrices and LU factorization with partial pivoting.
//!
//! The simplex solver itself works with the sparse factorization in
//! [`crate::factor`]; the dense routines here remain the reference
//! implementation the sparse path is tested against, and are exported for
//! standalone dense linear-system work.

use crate::LpError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Self { rows, cols, data: data.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrows of two distinct rows at once.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(a, b, "rows must be distinct");
        let c = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * c);
            (&mut lo[a * c..(a + 1) * c], &mut hi[..c])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * c);
            let (rb, ra) = (&mut lo[b * c..(b + 1) * c], &mut hi[..c]);
            (ra, rb)
        }
    }

    /// Matrix-vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for (r, out_r) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *out_r = acc;
        }
        out
    }

    /// Transposed matrix-vector product `selfᵀ · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn mat_vec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            // postcard-analyze: allow(PA101) — exact-zero row skip.
            if xr == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * xr;
            }
        }
        out
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

/// LU factorization `P·A = L·U` of a square matrix with partial pivoting.
///
/// Used by the simplex basis manager for periodic refactorization; also
/// usable standalone to solve dense linear systems.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L (strictly lower, unit diagonal implicit) and U (upper).
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Parity of the permutation, for determinant sign.
    sign: f64,
}

impl LuFactors {
    /// Factorizes `a`. Returns [`LpError::SingularBasis`] when a pivot column
    /// has no entry larger than `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factorize(a: &DenseMatrix, tol: f64) -> Result<Self, LpError> {
        assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Partial pivoting: pick the largest |entry| in this column.
            let mut best = col;
            let mut best_val = lu.get(col, col).abs();
            for r in (col + 1)..n {
                let v = lu.get(r, col).abs();
                if v > best_val {
                    best = r;
                    best_val = v;
                }
            }
            if best_val <= tol {
                return Err(LpError::SingularBasis);
            }
            if best != col {
                perm.swap(col, best);
                sign = -sign;
                let (ra, rb) = lu.two_rows_mut(col, best);
                ra.swap_with_slice(rb);
            }
            let pivot = lu.get(col, col);
            for r in (col + 1)..n {
                let factor = lu.get(r, col) / pivot;
                lu.set(r, col, factor);
                // postcard-analyze: allow(PA101) — exact-zero elimination skip.
                if factor != 0.0 {
                    let (pivot_row, row) = lu.two_rows_mut(col, r);
                    for c in (col + 1)..n {
                        row[c] -= factor * pivot_row[c];
                    }
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n);
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let row = self.lu.row(r);
            let mut acc = x[r];
            for c in 0..r {
                acc -= row[c] * x[c];
            }
            x[r] = acc;
        }
        for r in (0..n).rev() {
            let row = self.lu.row(r);
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= row[c] * x[c];
            }
            x[r] = acc / row[r];
        }
        x
    }

    /// Solves `Aᵀ·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n);
        // Aᵀ = Uᵀ·Lᵀ·P, so solve Uᵀy = b, then Lᵀz = y, then x = Pᵀz.
        let mut y = b.to_vec();
        for r in 0..n {
            let mut acc = y[r];
            for (c, &yc) in y.iter().enumerate().take(r) {
                acc -= self.lu.get(c, r) * yc;
            }
            y[r] = acc / self.lu.get(r, r);
        }
        for r in (0..n).rev() {
            let mut acc = y[r];
            for (c, &yc) in y.iter().enumerate().skip(r + 1) {
                acc -= self.lu.get(c, r) * yc;
            }
            y[r] = acc;
        }
        let mut x = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = y[i];
        }
        x
    }

    /// Determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.dim() {
            det *= self.lu.get(i, i);
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn identity_solves_trivially() {
        let id = DenseMatrix::identity(4);
        let lu = LuFactors::factorize(&id, 1e-12).unwrap();
        let x = lu.solve(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(approx(lu.determinant(), 1.0));
    }

    #[test]
    fn solve_small_system() {
        // [2 1; 1 3] x = [3; 5] → x = [4/5, 7/5]
        let a = DenseMatrix::from_rows(2, 2, &[2.0, 1.0, 1.0, 3.0]);
        let lu = LuFactors::factorize(&a, 1e-12).unwrap();
        let x = lu.solve(&[3.0, 5.0]);
        assert!(approx(x[0], 0.8));
        assert!(approx(x[1], 1.4));
    }

    #[test]
    fn transposed_solve_matches_explicit_transpose() {
        let a = DenseMatrix::from_rows(3, 3, &[4.0, 1.0, 0.5, 2.0, 5.0, 1.0, 0.0, 1.0, 3.0]);
        let lu = LuFactors::factorize(&a, 1e-12).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = lu.solve_transposed(&b);
        // Verify Aᵀx = b.
        let mut at = DenseMatrix::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                at.set(r, c, a.get(c, r));
            }
        }
        let bx = at.mat_vec(&x);
        for i in 0..3 {
            assert!(approx(bx[i], b[i]), "row {i}: {} vs {}", bx[i], b[i]);
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(LuFactors::factorize(&a, 1e-10).unwrap_err(), LpError::SingularBasis);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = DenseMatrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let lu = LuFactors::factorize(&a, 1e-12).unwrap();
        let x = lu.solve(&[7.0, 9.0]);
        assert!(approx(x[0], 9.0) && approx(x[1], 7.0));
        assert!(approx(lu.determinant(), -1.0));
    }

    #[test]
    fn mat_vec_and_transpose() {
        let a = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.mat_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(a.mat_vec_transposed(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn two_rows_mut_either_order() {
        let mut a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        {
            let (r1, r0) = a.two_rows_mut(1, 0);
            r1[0] += r0[0];
        }
        assert_eq!(a.get(1, 0), 4.0);
    }

    #[test]
    fn random_solve_residual_small() {
        // Deterministic pseudo-random matrix via LCG; checks ‖Ax−b‖∞ tiny.
        let n = 30;
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a.set(r, c, next());
            }
            // Diagonal dominance keeps it well-conditioned.
            let d = a.get(r, r);
            a.set(r, r, d + 5.0 * d.signum().max(1.0));
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let lu = LuFactors::factorize(&a, 1e-12).unwrap();
        let x = lu.solve(&b);
        let ax = a.mat_vec(&x);
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-8);
        }
    }
}
