//! Error types for the LP substrate.

use std::fmt;

/// Errors produced while building or solving a linear program.
///
/// The solver distinguishes *modeling* errors (the caller built a malformed
/// problem) from *numerical* errors (the simplex could not make progress
/// within its iteration budget).
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A variable handle refers to a different (or later-grown) model.
    UnknownVariable {
        /// Index carried by the offending handle.
        index: usize,
        /// Number of variables in the model at the time of use.
        num_vars: usize,
    },
    /// A variable was declared with `lower > upper`.
    InvalidBounds {
        /// Variable name as registered with the model.
        name: String,
        /// Declared lower bound.
        lower: f64,
        /// Declared upper bound.
        upper: f64,
    },
    /// A coefficient, bound, or right-hand side was NaN.
    NotANumber {
        /// Human-readable location of the NaN (e.g. a constraint name).
        context: String,
    },
    /// The simplex exceeded its iteration budget without converging.
    IterationLimit {
        /// The iteration budget that was exhausted.
        limit: usize,
    },
    /// The basis matrix became numerically singular and refactorization did
    /// not recover it.
    SingularBasis,
    /// The model has no constraints and an unbounded objective direction, or
    /// is otherwise degenerate in a way the standardizer cannot express.
    EmptyModel,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVariable { index, num_vars } => write!(
                f,
                "variable handle {index} does not belong to this model ({num_vars} variables)"
            ),
            LpError::InvalidBounds { name, lower, upper } => {
                write!(f, "variable `{name}` has empty bound interval [{lower}, {upper}]")
            }
            LpError::NotANumber { context } => write!(f, "NaN encountered in {context}"),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exceeded")
            }
            LpError::SingularBasis => write!(f, "basis matrix is numerically singular"),
            LpError::EmptyModel => write!(f, "model has no variables"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LpError::InvalidBounds { name: "x".into(), lower: 2.0, upper: 1.0 };
        let s = e.to_string();
        assert!(s.contains('x') && s.contains('2') && s.contains('1'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }

    #[test]
    fn iteration_limit_display() {
        assert!(LpError::IterationLimit { limit: 10 }.to_string().contains("10"));
    }
}
