//! Compressed sparse column (CSC) matrices.
//!
//! The simplex solver stores the constraint matrix in CSC form because every
//! iteration needs fast access to individual *columns* (pricing a candidate
//! entering variable, computing the pivot column).

/// A compressed-sparse-column matrix of `f64`.
///
/// Invariants: `col_ptr` has `cols + 1` entries, is non-decreasing, and
/// `row_idx[col_ptr[j]..col_ptr[j+1]]` lists the (not necessarily sorted)
/// row indices of the nonzeros of column `j` with matching `values`.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Builder accumulating triplets before compression.
#[derive(Debug, Clone, Default)]
pub struct CscBuilder {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl CscBuilder {
    /// Creates a builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, triplets: Vec::new() }
    }

    /// Records `value` at `(row, col)`; duplicate coordinates are summed on
    /// [`CscBuilder::build`].
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "triplet out of range");
        // postcard-analyze: allow(PA101) — exact-zero entries are not stored.
        if value != 0.0 {
            self.triplets.push((row, col, value));
        }
    }

    /// Compresses the accumulated triplets into a [`CscMatrix`].
    ///
    /// Triplets sharing a coordinate are summed; entries that sum to exactly
    /// zero are still stored (they are harmless and rare in practice).
    pub fn build(mut self) -> CscMatrix {
        self.triplets.sort_unstable_by_key(|&(r, c, _)| (c, r));
        let mut col_ptr = vec![0usize; self.cols + 1];
        let mut row_idx: Vec<usize> = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.triplets.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in self.triplets {
            match values.last_mut() {
                Some(tail) if last == Some((c, r)) => *tail += v,
                _ => {
                    row_idx.push(r);
                    values.push(v);
                    col_ptr[c + 1] += 1;
                    last = Some((c, r));
                }
            }
        }
        for c in 0..self.cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        CscMatrix { rows: self.rows, cols: self.cols, col_ptr, row_idx, values }
    }
}

impl CscMatrix {
    /// An empty matrix with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, col_ptr: vec![0; cols + 1], row_idx: Vec::new(), values: Vec::new() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates the nonzeros of column `j` as `(row, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    #[inline]
    pub fn column(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Dot product of column `j` with a dense vector.
    #[inline]
    pub fn column_dot(&self, j: usize, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.rows);
        self.column(j).map(|(r, v)| v * x[r]).sum()
    }

    /// Scatters column `j` into a dense vector (which must be zeroed by the
    /// caller beforehand if that is the desired semantics — values are
    /// *added*).
    #[inline]
    pub fn scatter_column(&self, j: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rows);
        for (r, v) in self.column(j) {
            out[r] += v;
        }
    }

    /// Dense matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            // postcard-analyze: allow(PA101) — exact-zero column skip.
            if xj == 0.0 {
                continue;
            }
            for (r, v) in self.column(j) {
                out[r] += v * xj;
            }
        }
        out
    }

    /// Dense element lookup (O(nnz in column)).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.column(c).filter(|&(ri, _)| ri == r).map(|(_, v)| v).sum()
    }

    /// Visits every stored entry as `(storage_index, row, col)`, in column
    /// order. The storage index addresses [`CscMatrix::values_mut`], letting
    /// callers build row-oriented views (e.g. the per-row entry lists the
    /// standard-form refresh uses to rescale a row in place).
    pub(crate) fn for_each_entry(&self, mut f: impl FnMut(usize, usize, usize)) {
        for c in 0..self.cols {
            for idx in self.col_ptr[c]..self.col_ptr[c + 1] {
                f(idx, self.row_idx[idx], c);
            }
        }
    }

    /// Mutable access to the stored values (sparsity pattern fixed). Indexed
    /// by the storage index reported by [`CscMatrix::for_each_entry`].
    pub(crate) fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back() {
        let mut b = CscBuilder::new(3, 2);
        b.push(0, 0, 1.0);
        b.push(2, 0, -2.0);
        b.push(1, 1, 3.0);
        let m = b.build();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 0), -2.0);
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = CscBuilder::new(2, 2);
        b.push(0, 1, 1.5);
        b.push(0, 1, 2.5);
        let m = b.build();
        assert_eq!(m.get(0, 1), 4.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn zeros_are_dropped() {
        let mut b = CscBuilder::new(2, 2);
        b.push(0, 0, 0.0);
        let m = b.build();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn mat_vec_matches_dense() {
        let mut b = CscBuilder::new(2, 3);
        // [1 0 2; 0 3 0]
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(1, 1, 3.0);
        let m = b.build();
        assert_eq!(m.mat_vec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        assert_eq!(m.column_dot(2, &[5.0, 7.0]), 10.0);
    }

    #[test]
    fn scatter_accumulates() {
        let mut b = CscBuilder::new(2, 1);
        b.push(0, 0, 1.0);
        b.push(1, 0, 2.0);
        let m = b.build();
        let mut out = vec![1.0, 1.0];
        m.scatter_column(0, &mut out);
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn empty_matrix_behaves() {
        let m = CscMatrix::zeros(3, 3);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.mat_vec(&[1.0; 3]), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "triplet out of range")]
    fn out_of_range_panics() {
        let mut b = CscBuilder::new(1, 1);
        b.push(1, 0, 1.0);
    }
}
