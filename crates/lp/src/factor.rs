//! Sparse LU factorization of simplex basis matrices.
//!
//! The revised simplex solver represents its basis `B` as a product-form
//! factorization computed here, plus a short eta file (see [`crate::eta`])
//! of post-factorization pivots. Bases arising from time-expanded flow
//! models are extremely sparse and near-triangular — each structural
//! column touches two conservation rows and a capacity row — so a
//! column-singleton peel orders most of the basis without any fill-in,
//! and the remaining columns are eliminated left-looking with partial
//! pivoting.
//!
//! Storage is Gaussian product form: step `k` eliminates basis column
//! `col_order[k]` on pivot row `pivot_row[k]`, recording the off-pivot
//! multipliers in `lcols[k]` (the sparse column of the elementary
//! transform `M_k`, unit diagonal implicit) and the transformed column's
//! upper-triangular entries in `ucols[k]`/`udiag[k]`. `ftran`/`btran`
//! replay these transforms in O(nnz(L) + nnz(U)).

use crate::error::LpError;

/// Sparse LU factorization of a square basis matrix in product form.
#[derive(Debug, Clone)]
pub(crate) struct BasisFactor {
    /// Dimension of the factorized basis.
    m: usize,
    /// `col_order[k]` is the basis position eliminated at step `k`.
    col_order: Vec<usize>,
    /// `pivot_row[k]` is the pivot row chosen at step `k`.
    pivot_row: Vec<usize>,
    /// Off-pivot elimination multipliers of step `k`: `(row, l)` pairs.
    lcols: Vec<Vec<(usize, f64)>>,
    /// Upper entries of the transformed column at step `k`: `(step, u)`
    /// pairs where `step < k` indexes an earlier pivot.
    ucols: Vec<Vec<(usize, f64)>>,
    /// Pivot value of step `k`.
    udiag: Vec<f64>,
}

impl BasisFactor {
    /// Factorization of the `m × m` identity (the all-slack/artificial
    /// start basis). Every ftran/btran through it is a no-op copy.
    pub(crate) fn identity(m: usize) -> Self {
        Self {
            m,
            col_order: (0..m).collect(),
            pivot_row: (0..m).collect(),
            lcols: vec![Vec::new(); m],
            ucols: vec![Vec::new(); m],
            udiag: vec![1.0; m],
        }
    }

    /// Dimension of the factorized basis.
    #[cfg(test)]
    pub(crate) fn dim(&self) -> usize {
        self.m
    }

    /// Total stored nonzeros across the L and U factors (fill metric).
    #[cfg(test)]
    pub(crate) fn fill(&self) -> usize {
        let l: usize = self.lcols.iter().map(Vec::len).sum();
        let u: usize = self.ucols.iter().map(Vec::len).sum();
        l + u + self.m
    }

    /// Factorizes the basis whose `k`-th column has the sparse entries
    /// `cols[k]` (row, value). Returns [`LpError::SingularBasis`] when no
    /// pivot larger than `pivot_tol` in magnitude can be found for some
    /// column.
    pub(crate) fn factorize(cols: &[Vec<(usize, f64)>], pivot_tol: f64) -> Result<Self, LpError> {
        let m = cols.len();

        // Column-singleton peel: repeatedly pick a column with exactly one
        // entry in a still-active row and pivot on it. Time-expanded bases
        // are near-triangular, so this usually orders most of the basis
        // with zero fill-in; leftovers fall through to the general
        // left-looking phase in their natural order.
        let mut order: Vec<usize> = Vec::with_capacity(m);
        {
            let mut row_active = vec![true; m];
            let mut assigned = vec![false; m];
            let mut active_count: Vec<usize> = cols.iter().map(Vec::len).collect();
            let mut row_cols: Vec<Vec<usize>> = vec![Vec::new(); m];
            for (j, col) in cols.iter().enumerate() {
                for &(r, _) in col {
                    if r >= m {
                        return Err(LpError::SingularBasis);
                    }
                    row_cols[r].push(j);
                }
            }
            let mut queue: Vec<usize> = (0..m).filter(|&j| active_count[j] == 1).collect();
            while let Some(j) = queue.pop() {
                if assigned[j] || active_count[j] != 1 {
                    continue;
                }
                let Some(&(r, v)) = cols[j].iter().find(|&&(r, _)| row_active[r]) else {
                    continue;
                };
                if v.abs() <= pivot_tol {
                    // Too small to pivot on structurally; leave this column
                    // to the general phase (which may still reject it).
                    continue;
                }
                assigned[j] = true;
                order.push(j);
                row_active[r] = false;
                for &j2 in &row_cols[r] {
                    if !assigned[j2] && active_count[j2] > 0 {
                        active_count[j2] -= 1;
                        if active_count[j2] == 1 {
                            queue.push(j2);
                        }
                    }
                }
            }
            for (j, &done) in assigned.iter().enumerate() {
                if !done {
                    order.push(j);
                }
            }
        }

        // Left-looking elimination over the chosen column order, with a
        // dense scatter work array and partial pivoting among rows not yet
        // used as pivots.
        let mut col_order = Vec::with_capacity(m);
        let mut pivot_row = Vec::with_capacity(m);
        let mut lcols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut ucols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut udiag = Vec::with_capacity(m);
        let mut is_pivot = vec![false; m];
        let mut work = vec![0.0_f64; m];

        for &j in &order {
            for &(r, v) in &cols[j] {
                work[r] += v;
            }
            // Apply the earlier elementary transforms in step order,
            // recording the upper-triangular entries they expose.
            let mut uents: Vec<(usize, f64)> = Vec::new();
            for i in 0..col_order.len() {
                let x = work[pivot_row[i]];
                // postcard-analyze: allow(PA101) — exact-zero scatter skip.
                if x != 0.0 {
                    uents.push((i, x));
                    for &(r, l) in &lcols[i] {
                        work[r] -= l * x;
                    }
                }
            }
            // Partial pivoting among rows that are not yet pivots.
            let mut best = usize::MAX;
            let mut best_abs = pivot_tol;
            for (r, &w) in work.iter().enumerate() {
                if !is_pivot[r] && w.abs() > best_abs {
                    best_abs = w.abs();
                    best = r;
                }
            }
            if best == usize::MAX {
                // Clean the work array before bailing is unnecessary: the
                // factorization is discarded on error.
                return Err(LpError::SingularBasis);
            }
            let d = work[best];
            let mut lent: Vec<(usize, f64)> = Vec::new();
            for (r, &w) in work.iter().enumerate() {
                // postcard-analyze: allow(PA101) — exact-zero multiplier skip.
                if r != best && !is_pivot[r] && w != 0.0 {
                    lent.push((r, w / d));
                }
            }
            // Reset exactly the touched entries: earlier pivot rows came
            // through `uents`, active rows through `lent`, plus the pivot.
            for &(i, _) in &uents {
                work[pivot_row[i]] = 0.0;
            }
            for &(r, _) in &lent {
                work[r] = 0.0;
            }
            work[best] = 0.0;
            is_pivot[best] = true;
            col_order.push(j);
            pivot_row.push(best);
            udiag.push(d);
            ucols.push(uents);
            lcols.push(lent);
        }

        Ok(Self { m, col_order, pivot_row, lcols, ucols, udiag })
    }

    /// Solves `B·z = b` in place: `work` holds `b` on entry and `z` on
    /// exit, where `z[k]` is the multiplier of the basis column at
    /// position `k`.
    pub(crate) fn ftran(&self, work: &mut [f64]) {
        debug_assert_eq!(work.len(), self.m);
        // Forward pass: apply the elementary transforms M_0 … M_{m-1}.
        for k in 0..self.m {
            let x = work[self.pivot_row[k]];
            // postcard-analyze: allow(PA101) — exact-zero skip.
            if x != 0.0 {
                for &(r, l) in &self.lcols[k] {
                    work[r] -= l * x;
                }
            }
        }
        // Column-oriented back substitution through U.
        let mut s = vec![0.0_f64; self.m];
        for k in (0..self.m).rev() {
            let v = work[self.pivot_row[k]] / self.udiag[k];
            s[k] = v;
            // postcard-analyze: allow(PA101) — exact-zero skip.
            if v != 0.0 {
                for &(i, u) in &self.ucols[k] {
                    work[self.pivot_row[i]] -= u * v;
                }
            }
        }
        for k in 0..self.m {
            work[self.col_order[k]] = s[k];
        }
    }

    /// Solves `Bᵀ·y = c` in place: `work` holds `c` on entry (indexed by
    /// basis position) and `y` (indexed by row) on exit.
    pub(crate) fn btran(&self, work: &mut [f64]) {
        debug_assert_eq!(work.len(), self.m);
        // Forward solve through Uᵀ in step order.
        let mut s = vec![0.0_f64; self.m];
        for k in 0..self.m {
            let mut v = work[self.col_order[k]];
            for &(i, u) in &self.ucols[k] {
                v -= u * s[i];
            }
            s[k] = v / self.udiag[k];
        }
        for k in 0..self.m {
            work[self.pivot_row[k]] = s[k];
        }
        // Apply the transposed elementary transforms in reverse order.
        for k in (0..self.m).rev() {
            let mut v = work[self.pivot_row[k]];
            for &(r, l) in &self.lcols[k] {
                v -= l * work[r];
            }
            work[self.pivot_row[k]] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{DenseMatrix, LuFactors};

    fn dense_from_cols(cols: &[Vec<(usize, f64)>]) -> DenseMatrix {
        let m = cols.len();
        let mut a = DenseMatrix::zeros(m, m);
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                a.set(r, j, a.get(r, j) + v);
            }
        }
        a
    }

    fn lcg(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }

    #[test]
    fn identity_is_a_no_op() {
        let f = BasisFactor::identity(5);
        let mut v = vec![1.0, -2.0, 3.0, 0.0, 0.5];
        let expect = v.clone();
        f.ftran(&mut v);
        assert_eq!(v, expect);
        f.btran(&mut v);
        assert_eq!(v, expect);
        assert_eq!(f.dim(), 5);
    }

    #[test]
    fn triangular_basis_factors_without_fill() {
        // A lower-triangular basis: singleton peel should order it fully.
        let cols =
            vec![vec![(0, 2.0), (1, 1.0), (2, -1.0)], vec![(1, 3.0), (2, 0.5)], vec![(2, 4.0)]];
        let f = BasisFactor::factorize(&cols, 1e-12).unwrap();
        // No fill: stored nnz equals the input nnz.
        assert_eq!(f.fill(), 6);
        let mut b = vec![4.0, 5.0, 2.0];
        f.ftran(&mut b);
        let a = dense_from_cols(&cols);
        let lu = LuFactors::factorize(&a, 1e-12).unwrap();
        let expect = lu.solve(&[4.0, 5.0, 2.0]);
        for (got, want) in b.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn ftran_matches_dense_solve_on_random_bases() {
        let mut state = 0xDEAD_BEEF_u64;
        for trial in 0..20 {
            let m = 4 + trial % 13;
            // Sparse columns with a guaranteed diagonal for nonsingularity.
            let cols: Vec<Vec<(usize, f64)>> = (0..m)
                .map(|j| {
                    let mut col = vec![(j, 3.0 + lcg(&mut state))];
                    for r in 0..m {
                        if r != j && lcg(&mut state) > 0.55 {
                            col.push((r, lcg(&mut state)));
                        }
                    }
                    col
                })
                .collect();
            let b: Vec<f64> = (0..m).map(|_| lcg(&mut state)).collect();
            let f = BasisFactor::factorize(&cols, 1e-12).unwrap();
            let mut z = b.clone();
            f.ftran(&mut z);
            let a = dense_from_cols(&cols);
            let lu = LuFactors::factorize(&a, 1e-12).unwrap();
            let expect = lu.solve(&b);
            for (got, want) in z.iter().zip(&expect) {
                assert!((got - want).abs() < 1e-8, "trial {trial}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn btran_matches_dense_transposed_solve() {
        let mut state = 0xC0FF_EE11_u64;
        for trial in 0..20 {
            let m = 3 + trial % 11;
            let cols: Vec<Vec<(usize, f64)>> = (0..m)
                .map(|j| {
                    let mut col = vec![(j, 2.5 + lcg(&mut state))];
                    for r in 0..m {
                        if r != j && lcg(&mut state) > 0.6 {
                            col.push((r, lcg(&mut state)));
                        }
                    }
                    col
                })
                .collect();
            let c: Vec<f64> = (0..m).map(|_| lcg(&mut state)).collect();
            let f = BasisFactor::factorize(&cols, 1e-12).unwrap();
            let mut y = c.clone();
            f.btran(&mut y);
            let a = dense_from_cols(&cols);
            let lu = LuFactors::factorize(&a, 1e-12).unwrap();
            let expect = lu.solve_transposed(&c);
            for (got, want) in y.iter().zip(&expect) {
                assert!((got - want).abs() < 1e-8, "trial {trial}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn permuted_identity_needs_pivoting() {
        // Columns of a cyclic permutation matrix: every diagonal is zero.
        let cols = vec![vec![(1, 1.0)], vec![(2, 1.0)], vec![(0, 1.0)]];
        let f = BasisFactor::factorize(&cols, 1e-12).unwrap();
        let mut b = vec![7.0, 8.0, 9.0];
        f.ftran(&mut b);
        // B z = b with B e0 = e1, B e1 = e2, B e2 = e0 → z = (8, 9, 7).
        assert_eq!(b, vec![8.0, 9.0, 7.0]);
    }

    #[test]
    fn singular_basis_rejected() {
        let cols = vec![vec![(0, 1.0), (1, 2.0)], vec![(0, 2.0), (1, 4.0)]];
        assert_eq!(BasisFactor::factorize(&cols, 1e-10).unwrap_err(), LpError::SingularBasis);
    }

    #[test]
    fn out_of_range_row_rejected() {
        let cols = vec![vec![(5, 1.0)]];
        assert_eq!(BasisFactor::factorize(&cols, 1e-10).unwrap_err(), LpError::SingularBasis);
    }

    #[test]
    fn ftran_btran_round_trip() {
        // btran(ftran-adjoint) consistency: yᵀ B z == cᵀ z' relationship is
        // exercised indirectly by checking B·ftran(b) == b.
        let mut state = 0x1357_9BDF_u64;
        let m = 12;
        let cols: Vec<Vec<(usize, f64)>> = (0..m)
            .map(|j| {
                let mut col = vec![(j, 4.0 + lcg(&mut state))];
                for r in 0..m {
                    if r != j && lcg(&mut state) > 0.7 {
                        col.push((r, lcg(&mut state)));
                    }
                }
                col
            })
            .collect();
        let b: Vec<f64> = (0..m).map(|_| lcg(&mut state)).collect();
        let f = BasisFactor::factorize(&cols, 1e-12).unwrap();
        let mut z = b.clone();
        f.ftran(&mut z);
        // Recompute B·z column-wise and compare with b.
        let mut bz = vec![0.0; m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                bz[r] += v * z[j];
            }
        }
        for (got, want) in bz.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }
}
