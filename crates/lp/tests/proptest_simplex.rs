//! Property-based tests for the simplex solver.
//!
//! Strategy: build random LPs whose feasibility (and sometimes whose exact
//! optimum) is known by construction, then verify the solver's answer with
//! the independent checker in `postcard_lp::validate`.

use postcard_lp::{
    validate, LinExpr, Model, Sense, SimplexOptions, SolverWorkspace, Status, Variable,
};
use proptest::prelude::*;

/// Builds a model with `n` box-bounded variables and `m` "≤" constraints
/// that are guaranteed feasible at the box midpoint.
fn feasible_box_lp(
    n: usize,
    costs: &[f64],
    boxes: &[(f64, f64)],
    rows: &[Vec<f64>],
    slacks: &[f64],
) -> (Model, Vec<Variable>, Vec<f64>) {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<Variable> =
        (0..n).map(|i| m.add_var(format!("x{i}"), boxes[i].0, boxes[i].1)).collect();
    let mut obj = LinExpr::new();
    for (v, c) in vars.iter().zip(costs) {
        obj.add_term(*v, *c);
    }
    m.set_objective(obj);
    // The midpoint of the box is feasible by construction.
    let mid: Vec<f64> = boxes.iter().map(|(lo, hi)| 0.5 * (lo + hi)).collect();
    for (row, slack) in rows.iter().zip(slacks) {
        let mut e = LinExpr::new();
        let mut lhs_at_mid = 0.0;
        for (i, coef) in row.iter().enumerate() {
            e.add_term(vars[i], *coef);
            lhs_at_mid += coef * mid[i];
        }
        m.leq(e, lhs_at_mid + slack.abs());
    }
    (m, vars, mid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Box-only LPs have a closed-form optimum: each variable sits at the
    /// bound dictated by its cost sign.
    #[test]
    fn box_only_lp_matches_closed_form(
        costs in prop::collection::vec(-10.0f64..10.0, 1..6),
        raw_boxes in prop::collection::vec((-5.0f64..5.0, 0.1f64..10.0), 1..6),
    ) {
        let n = costs.len().min(raw_boxes.len());
        let boxes: Vec<(f64, f64)> =
            raw_boxes[..n].iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<Variable> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), boxes[i].0, boxes[i].1))
            .collect();
        let mut obj = LinExpr::new();
        for i in 0..n {
            obj.add_term(vars[i], costs[i]);
        }
        m.set_objective(obj);
        let s = m.solve().unwrap();
        prop_assert_eq!(s.status(), Status::Optimal);
        let expected: f64 = (0..n)
            .map(|i| if costs[i] >= 0.0 { costs[i] * boxes[i].0 } else { costs[i] * boxes[i].1 })
            .sum();
        prop_assert!((s.objective() - expected).abs() < 1e-5 * (1.0 + expected.abs()),
            "solver {} vs closed form {}", s.objective(), expected);
        prop_assert!(validate::is_feasible(&m, &s, 1e-6));
    }

    /// Constructed-feasible LPs must come back Optimal, feasible, and at
    /// least as good as the known interior point.
    #[test]
    fn constructed_feasible_lp_is_solved_and_beats_witness(
        costs in prop::collection::vec(-5.0f64..5.0, 2..5),
        raw_boxes in prop::collection::vec((-3.0f64..3.0, 0.5f64..6.0), 2..5),
        rows in prop::collection::vec(prop::collection::vec(-2.0f64..2.0, 2..5), 0..6),
        slacks in prop::collection::vec(0.0f64..4.0, 0..6),
    ) {
        let n = costs.len().min(raw_boxes.len());
        let boxes: Vec<(f64, f64)> =
            raw_boxes[..n].iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let m_rows = rows.len().min(slacks.len());
        let rows: Vec<Vec<f64>> = rows[..m_rows]
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.resize(n, 0.0);
                r
            })
            .collect();
        let (m, _, mid) = feasible_box_lp(n, &costs[..n], &boxes, &rows, &slacks[..m_rows]);
        let s = m.solve().unwrap();
        prop_assert_eq!(s.status(), Status::Optimal);
        prop_assert!(validate::is_feasible(&m, &s, 1e-6),
            "violations: {:?}", validate::check_feasibility(&m, &s, 1e-6));
        let witness: f64 = (0..n).map(|i| costs[i] * mid[i]).sum();
        prop_assert!(validate::at_least_as_good(&m, &s, witness, 1e-6));
    }

    /// The solver agrees with itself under objective scaling: scaling all
    /// costs by λ > 0 scales the optimum by λ and keeps an optimal point
    /// optimal.
    #[test]
    fn objective_scaling_invariance(
        lambda in 0.1f64..10.0,
        costs in prop::collection::vec(-5.0f64..5.0, 2..4),
        raw_boxes in prop::collection::vec((0.0f64..2.0, 0.5f64..4.0), 2..4),
        rows in prop::collection::vec(prop::collection::vec(-1.0f64..2.0, 2..4), 1..4),
        slacks in prop::collection::vec(0.5f64..3.0, 1..4),
    ) {
        let n = costs.len().min(raw_boxes.len());
        let boxes: Vec<(f64, f64)> =
            raw_boxes[..n].iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let m_rows = rows.len().min(slacks.len());
        let rows: Vec<Vec<f64>> = rows[..m_rows]
            .iter()
            .map(|r| { let mut r = r.clone(); r.resize(n, 0.0); r })
            .collect();
        let (m1, _, _) = feasible_box_lp(n, &costs[..n], &boxes, &rows, &slacks[..m_rows]);
        let scaled: Vec<f64> = costs[..n].iter().map(|c| c * lambda).collect();
        let (m2, _, _) = feasible_box_lp(n, &scaled, &boxes, &rows, &slacks[..m_rows]);
        let s1 = m1.solve().unwrap();
        let s2 = m2.solve().unwrap();
        prop_assert_eq!(s1.status(), Status::Optimal);
        prop_assert_eq!(s2.status(), Status::Optimal);
        prop_assert!((s2.objective() - lambda * s1.objective()).abs()
            < 1e-5 * (1.0 + s2.objective().abs()),
            "{} vs {}", s2.objective(), lambda * s1.objective());
    }

    /// Maximization is exactly negated minimization.
    #[test]
    fn max_is_negated_min(
        costs in prop::collection::vec(-5.0f64..5.0, 2..4),
        raw_boxes in prop::collection::vec((0.0f64..2.0, 0.5f64..4.0), 2..4),
    ) {
        let n = costs.len().min(raw_boxes.len());
        let boxes: Vec<(f64, f64)> =
            raw_boxes[..n].iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let build = |sense: Sense, costs: &[f64]| {
            let mut m = Model::new(sense);
            let vars: Vec<Variable> = (0..n)
                .map(|i| m.add_var(format!("x{i}"), boxes[i].0, boxes[i].1))
                .collect();
            let mut obj = LinExpr::new();
            for i in 0..n {
                obj.add_term(vars[i], costs[i]);
            }
            m.set_objective(obj);
            m
        };
        let neg: Vec<f64> = costs[..n].iter().map(|c| -c).collect();
        let smax = build(Sense::Maximize, &costs[..n]).solve().unwrap();
        let smin = build(Sense::Minimize, &neg).solve().unwrap();
        prop_assert!((smax.objective() + smin.objective()).abs() < 1e-6,
            "{} vs {}", smax.objective(), -smin.objective());
    }

    /// After an arbitrary RHS perturbation, the dual-simplex warm re-solve
    /// through `prepare`/`refresh` must land exactly where a cold two-phase
    /// solve of the mutated model lands: identical status, objectives within
    /// 1e-9, and an independently validated feasible point.
    #[test]
    fn dual_simplex_resolve_matches_cold_after_rhs_perturbation(
        costs in prop::collection::vec(-5.0f64..5.0, 2..5),
        raw_boxes in prop::collection::vec((0.0f64..3.0, 0.5f64..6.0), 2..5),
        rows in prop::collection::vec(prop::collection::vec(-2.0f64..2.0, 2..5), 1..6),
        slacks in prop::collection::vec(0.0f64..4.0, 1..6),
        deltas in prop::collection::vec(-3.0f64..3.0, 1..6),
    ) {
        let n = costs.len().min(raw_boxes.len());
        let m_rows = rows.len().min(slacks.len());
        let boxes: Vec<(f64, f64)> =
            raw_boxes[..n].iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let rows: Vec<Vec<f64>> = rows[..m_rows]
            .iter()
            .map(|r| { let mut r = r.clone(); r.resize(n, 0.0); r })
            .collect();
        let (mut m, _, _) = feasible_box_lp(n, &costs[..n], &boxes, &rows, &slacks[..m_rows]);
        let opts = SimplexOptions::default();
        let mut prepared = m.prepare().unwrap();
        let mut ws = SolverWorkspace::new();
        let first = prepared.solve_warm(&m, &opts, None, &mut ws).unwrap();
        prop_assert_eq!(first.status(), Status::Optimal);
        let basis = first.basis().cloned();

        // Perturb every row's RHS (possibly making the LP infeasible).
        let ids: Vec<_> = m.constraints().map(|(id, c)| (id, c.rhs())).collect();
        for (i, (id, rhs)) in ids.into_iter().enumerate() {
            m.set_rhs(id, rhs + deltas[i % deltas.len()]);
        }
        prop_assert!(prepared.refresh(&m), "rhs edits never change bound structure");
        let warm = prepared.solve_warm(&m, &opts, basis.as_ref(), &mut ws).unwrap();
        let cold = m.solve_with(&opts).unwrap();
        prop_assert_eq!(warm.status(), cold.status());
        if cold.status() == Status::Optimal {
            prop_assert!(
                (warm.objective() - cold.objective()).abs()
                    < 1e-9 * (1.0 + cold.objective().abs()),
                "warm {} vs cold {}", warm.objective(), cold.objective()
            );
            prop_assert!(validate::is_feasible(&m, &warm, 1e-6));
        }
    }

    /// A massively degenerate re-solve — every constraint tightened to be
    /// active at the unique optimum — terminates under the dual Bland rule
    /// (forced on from the first pivot) and still lands on the optimum.
    #[test]
    fn dual_simplex_terminates_on_degenerate_rhs(
        costs in prop::collection::vec(0.1f64..5.0, 2..5),
        rows in prop::collection::vec(prop::collection::vec(0.0f64..2.0, 2..5), 2..8),
    ) {
        let n = costs.len();
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<Variable> =
            (0..n).map(|i| m.add_var(format!("x{i}"), 0.0, 10.0)).collect();
        let mut obj = LinExpr::new();
        for (v, c) in vars.iter().zip(&costs) {
            obj.add_term(*v, *c);
        }
        m.set_objective(obj);
        // Nonnegative rows: feasible at the origin for any rhs ≥ 0, and
        // with positive costs the origin is the unique optimum.
        let mut ids = Vec::new();
        for row in &rows {
            let mut e = LinExpr::new();
            for (i, coef) in row.iter().take(n).enumerate() {
                e.add_term(vars[i], *coef);
            }
            ids.push(m.leq(e, 5.0));
        }
        // Bland from the very first pivot: termination must not rely on the
        // Dantzig phase making progress.
        let opts = SimplexOptions { bland_after: 0, ..SimplexOptions::default() };
        let mut prepared = m.prepare().unwrap();
        let mut ws = SolverWorkspace::new();
        let first = prepared.solve_warm(&m, &opts, None, &mut ws).unwrap();
        prop_assert_eq!(first.status(), Status::Optimal);
        let basis = first.basis().cloned();
        // Tighten every row to 0: all rows become active at the origin at
        // once — maximal degeneracy for the dual ratio test.
        for &id in &ids {
            m.set_rhs(id, 0.0);
        }
        prop_assert!(prepared.refresh(&m));
        let warm = prepared.solve_warm(&m, &opts, basis.as_ref(), &mut ws).unwrap();
        prop_assert_eq!(warm.status(), Status::Optimal);
        prop_assert!(warm.objective().abs() < 1e-9, "optimum is the origin");
        prop_assert!(validate::is_feasible(&m, &warm, 1e-6));
    }
}

/// Equality-constrained random transportation problems: supplies/demands
/// balanced by construction; solution must be feasible and integral-cost
/// consistent with the greedy upper bound.
#[test]
fn random_transportation_problems_feasible_and_bounded() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(42);
    for trial in 0..25 {
        let ns = rng.gen_range(2..5usize);
        let nd = rng.gen_range(2..5usize);
        let mut supply: Vec<f64> = (0..ns).map(|_| rng.gen_range(1.0..20.0f64).round()).collect();
        let demand: Vec<f64> = {
            let total: f64 = supply.iter().sum();
            // Split total into nd random parts.
            let mut cuts: Vec<f64> = (0..nd - 1).map(|_| rng.gen_range(0.0..total)).collect();
            cuts.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut parts = Vec::with_capacity(nd);
            let mut prev = 0.0;
            for c in &cuts {
                parts.push(c - prev);
                prev = *c;
            }
            parts.push(total - prev);
            parts
        };
        // Repair tiny negative parts from rounding.
        supply.iter_mut().for_each(|s| *s = s.max(0.0));
        let cost: Vec<Vec<f64>> =
            (0..ns).map(|_| (0..nd).map(|_| rng.gen_range(1.0..10.0)).collect()).collect();

        let mut m = Model::new(Sense::Minimize);
        let mut vars = Vec::new();
        for i in 0..ns {
            let row: Vec<Variable> =
                (0..nd).map(|j| m.add_var(format!("x{i}_{j}"), 0.0, f64::INFINITY)).collect();
            vars.push(row);
        }
        let mut obj = LinExpr::new();
        for i in 0..ns {
            for j in 0..nd {
                obj.add_term(vars[i][j], cost[i][j]);
            }
        }
        m.set_objective(obj);
        for i in 0..ns {
            let e: LinExpr = (0..nd).map(|j| LinExpr::from(vars[i][j])).sum();
            m.eq(e, supply[i]);
        }
        for j in 0..nd {
            let e: LinExpr = (0..ns).map(|i| LinExpr::from(vars[i][j])).sum();
            m.eq(e, demand[j]);
        }
        let s = m.solve().unwrap();
        assert_eq!(s.status(), Status::Optimal, "trial {trial}");
        assert!(validate::is_feasible(&m, &s, 1e-5), "trial {trial}");
        // Upper bound: ship everything at the worst cost.
        let worst: f64 = cost.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        let total: f64 = supply.iter().sum();
        assert!(s.objective() <= worst * total + 1e-6);
        // Lower bound: everything at the best cost.
        let best: f64 = cost.iter().flatten().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(s.objective() >= best * total - 1e-6);
    }
}
