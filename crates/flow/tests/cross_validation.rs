//! Cross-validation of independent algorithm implementations: Dinic vs
//! Edmonds–Karp max-flow, SSP vs cycle-canceling min-cost flow, and both
//! against the LP solver, on randomized graphs.

use postcard_flow::{
    cycle_canceling_min_cost, dinic_max_flow, edmonds_karp_max_flow, min_cost_flow, FlowNetwork,
    NodeId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(seed: u64, n: usize, density: f64) -> FlowNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = FlowNetwork::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(density) {
                g.add_edge(
                    NodeId(u),
                    NodeId(v),
                    rng.gen_range(1.0..10.0f64).round(),
                    rng.gen_range(1.0..8.0f64).round(),
                );
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dinic_equals_edmonds_karp(seed in 0u64..10_000, n in 3usize..9) {
        let mut g1 = random_graph(seed, n, 0.5);
        let mut g2 = g1.clone();
        let (s, t) = (NodeId(0), NodeId(n - 1));
        let a = dinic_max_flow(&mut g1, s, t);
        let b = edmonds_karp_max_flow(&mut g2, s, t);
        prop_assert!((a - b).abs() < 1e-6, "dinic {a} vs edmonds-karp {b}");
    }

    #[test]
    fn ssp_equals_cycle_canceling(seed in 0u64..10_000, n in 3usize..8) {
        let mut g1 = random_graph(seed, n, 0.5);
        let mut g2 = g1.clone();
        let (s, t) = (NodeId(0), NodeId(n - 1));
        let a = min_cost_flow(&mut g1, s, t, f64::INFINITY);
        let b = cycle_canceling_min_cost(&mut g2, s, t, f64::INFINITY);
        prop_assert!((a.flow - b.flow).abs() < 1e-6, "flows {} vs {}", a.flow, b.flow);
        prop_assert!(
            (a.cost - b.cost).abs() < 1e-6 * (1.0 + a.cost.abs()),
            "costs {} vs {}",
            a.cost,
            b.cost
        );
    }

    #[test]
    fn ssp_equals_cycle_canceling_with_finite_target(
        seed in 0u64..10_000,
        n in 3usize..8,
        target in 1.0f64..12.0,
    ) {
        let mut g1 = random_graph(seed, n, 0.6);
        let mut g2 = g1.clone();
        let (s, t) = (NodeId(0), NodeId(n - 1));
        let a = min_cost_flow(&mut g1, s, t, target);
        let b = cycle_canceling_min_cost(&mut g2, s, t, target);
        prop_assert!((a.flow - b.flow).abs() < 1e-6, "flows {} vs {}", a.flow, b.flow);
        prop_assert!(
            (a.cost - b.cost).abs() < 1e-6 * (1.0 + a.cost.abs()),
            "costs {} vs {}",
            a.cost,
            b.cost
        );
    }
}

/// Deterministic spot-check of min-cost flow against the LP formulation
/// (the same check as in the unit tests, at larger sizes).
#[test]
fn min_cost_flow_matches_lp_on_larger_graphs() {
    use postcard_lp::{LinExpr, Model, Sense, Status};
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..5 {
        let n = rng.gen_range(8..12usize);
        let g0 = random_graph(rng.gen(), n, 0.4);
        let (s, t) = (NodeId(0), NodeId(n - 1));
        let mut g = g0.clone();
        let out = min_cost_flow(&mut g, s, t, f64::INFINITY);

        // LP: min cost at exactly `out.flow` units.
        let mut m = Model::new(Sense::Minimize);
        let edges: Vec<(usize, usize, f64, f64)> =
            g0.forward_edges().map(|(_, from, to, cap, cost)| (from.0, to.0, cap, cost)).collect();
        let vars: Vec<_> = edges
            .iter()
            .enumerate()
            .map(|(i, &(_, _, cap, _))| m.add_var(format!("e{i}"), 0.0, cap))
            .collect();
        let mut obj = LinExpr::new();
        for (i, &(_, _, _, cost)) in edges.iter().enumerate() {
            obj.add_term(vars[i], cost);
        }
        m.set_objective(obj);
        for node in 0..n {
            let mut e = LinExpr::new();
            for (i, &(u, v, _, _)) in edges.iter().enumerate() {
                if u == node {
                    e.add_term(vars[i], 1.0);
                }
                if v == node {
                    e.add_term(vars[i], -1.0);
                }
            }
            if node == s.0 {
                m.eq(e, out.flow);
            } else if node != t.0 {
                m.eq(e, 0.0);
            }
        }
        let sol = m.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert!(
            (sol.objective() - out.cost).abs() < 1e-5 * (1.0 + out.cost),
            "LP {} vs SSP {}",
            sol.objective(),
            out.cost
        );
    }
}
