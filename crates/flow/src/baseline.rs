//! The paper's flow-based baseline (Sec. II-B), in two flavours.
//!
//! 1. [`two_phase_baseline`] — the decomposition the paper proposes:
//!    *phase 1* routes the largest common fraction of all desired rates
//!    through capacity that is **already paid for** (the charged volume
//!    `X_ij(t−1)` minus current usage) via a maximum concurrent flow;
//!    *phase 2* routes the remaining demand at minimum additional cost via a
//!    min-cost multicommodity flow.
//! 2. [`unified_flow_lp`] — a single LP in the exact percentile cost model:
//!    the strongest storage-free baseline, used by the figure reproductions
//!    (it can only make the flow-based approach look *better*, so Postcard's
//!    wins against it are conservative).

use crate::assignment::FlowAssignment;
use crate::lp_flows::{max_concurrent_flow, min_cost_multicommodity, Commodity};
use postcard_lp::{Basis, LinExpr, LpError, Model, Sense, Status};
use postcard_net::{DcId, FileId, Network, TrafficLedger, TransferRequest};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from the flow-based baselines.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The desired rates do not fit the residual capacities — the flow-based
    /// model cannot serve this batch (store-and-forward might still).
    Infeasible,
    /// The underlying LP solver failed.
    Lp(LpError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Infeasible => {
                write!(f, "desired rates do not fit the residual link capacities")
            }
            BaselineError::Lp(e) => write!(f, "LP solver failure: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<LpError> for BaselineError {
    fn from(e: LpError) -> Self {
        BaselineError::Lp(e)
    }
}

/// Outcome of [`two_phase_baseline`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowBaselineOutcome {
    /// The combined rate assignment (phase 1 + phase 2).
    pub assignment: FlowAssignment,
    /// Fraction of every demand served from already-paid capacity in
    /// phase 1 (`λ* ∈ [0, 1]`).
    pub lambda_paid: f64,
}

/// Static per-link free capacity over the batch horizon: the minimum over
/// all slots any file is active of the residual capacity.
fn static_residual(
    network: &Network,
    ledger: &TrafficLedger,
    files: &[TransferRequest],
) -> BTreeMap<(usize, usize), f64> {
    let mut out = BTreeMap::new();
    let lo = files.iter().map(|f| f.first_slot()).min().unwrap_or(0);
    let hi = files.iter().map(|f| f.last_slot()).max().unwrap_or(0);
    for link in network.links() {
        let mut cap = link.capacity;
        for slot in lo..=hi {
            cap = cap.min(ledger.residual(network, link.from, link.to, slot));
        }
        out.insert((link.from.0, link.to.0), cap.max(0.0));
    }
    out
}

/// Static per-link *paid* capacity: the minimum over the horizon of
/// `max(0, X_ij − usage_ij(slot))`, additionally clipped by the residual —
/// traffic that fits under the running peak is free under the 100-th
/// percentile scheme.
fn static_paid(
    network: &Network,
    ledger: &TrafficLedger,
    files: &[TransferRequest],
    residual: &BTreeMap<(usize, usize), f64>,
) -> BTreeMap<(usize, usize), f64> {
    let mut out = BTreeMap::new();
    let lo = files.iter().map(|f| f.first_slot()).min().unwrap_or(0);
    let hi = files.iter().map(|f| f.last_slot()).max().unwrap_or(0);
    for link in network.links() {
        let peak = ledger.peak(link.from, link.to);
        let mut paid = f64::INFINITY;
        for slot in lo..=hi {
            let headroom = (peak - ledger.volume(link.from, link.to, slot)).max(0.0);
            paid = paid.min(headroom);
        }
        let free = residual[&(link.from.0, link.to.0)];
        out.insert((link.from.0, link.to.0), paid.min(free));
    }
    out
}

fn commodities_of(files: &[TransferRequest]) -> Vec<Commodity> {
    files
        .iter()
        .map(|f| Commodity { id: f.id.0, src: f.src, dst: f.dst, demand: f.desired_rate() })
        .collect()
}

/// The paper's two-phase flow-based approach.
///
/// # Errors
///
/// [`BaselineError::Infeasible`] when phase 2 cannot route the residual
/// demands; [`BaselineError::Lp`] on solver failure.
pub fn two_phase_baseline(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
) -> Result<FlowBaselineOutcome, BaselineError> {
    if files.is_empty() {
        return Ok(FlowBaselineOutcome { assignment: FlowAssignment::new(), lambda_paid: 0.0 });
    }
    let commodities = commodities_of(files);
    let residual = static_residual(network, ledger, files);
    let paid = static_paid(network, ledger, files, &residual);

    // Phase 1: fill already-paid capacity.
    let phase1 = max_concurrent_flow(network, &commodities, |i, j| paid[&(i.0, j.0)], Some(1.0))?;
    let lambda = phase1.objective.clamp(0.0, 1.0);

    let mut assignment = FlowAssignment::new();
    for (&(id, i, j), &r) in &phase1.rates {
        assignment.add_rate(FileId(id), DcId(i), DcId(j), r);
    }

    // Phase 2: route the remainder at minimum extra cost within what is left
    // of the residual capacity after phase 1.
    if lambda < 1.0 - 1e-9 {
        let remainder: Vec<Commodity> = commodities
            .iter()
            .map(|c| Commodity { demand: c.demand * (1.0 - lambda), ..*c })
            .collect();
        let phase2 = min_cost_multicommodity(network, &remainder, |i, j| {
            let used: f64 = commodities
                .iter()
                .map(|c| phase1.rates.get(&(c.id, i.0, j.0)).copied().unwrap_or(0.0))
                .sum();
            (residual[&(i.0, j.0)] - used).max(0.0)
        })?
        .ok_or(BaselineError::Infeasible)?;
        for (&(id, i, j), &r) in &phase2.rates {
            assignment.add_rate(FileId(id), DcId(i), DcId(j), r);
        }
    }
    Ok(FlowBaselineOutcome { assignment, lambda_paid: lambda })
}

/// The storage-free flow LP in the exact percentile cost model.
///
/// Variables: a constant rate `f_ij^k ≥ 0` per file per link, plus the
/// charged volume `X_ij ≥ X_ij(t−1)`. Constraints: instantaneous
/// conservation per file; per-slot capacity `Σ_{k active(n)} f_ij^k ≤
/// c_ij(n)`; and `X_ij ≥ usage_ij(n) + Σ_{k active(n)} f_ij^k` for every
/// horizon slot. Objective: `min Σ a_ij · X_ij`.
///
/// # Errors
///
/// [`BaselineError::Infeasible`] when the desired rates do not fit;
/// [`BaselineError::Lp`] on solver failure.
pub fn unified_flow_lp(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
) -> Result<FlowAssignment, BaselineError> {
    unified_flow_lp_warm(network, files, ledger, None).map(|o| o.assignment)
}

/// Outcome of [`unified_flow_lp_warm`]: the assignment plus solver effort and
/// the optimal basis for warm-starting the next same-shaped solve.
#[derive(Debug, Clone)]
pub struct UnifiedFlowOutcome {
    /// The optimal rate assignment.
    pub assignment: FlowAssignment,
    /// Simplex pivots used (0 for an empty batch).
    pub lp_iterations: usize,
    /// How many of those pivots were dual-simplex pivots (non-zero only on
    /// warm solves resuming from a dual-feasible basis).
    pub dual_iterations: usize,
    /// The optimal basis, exportable into the next solve's `warm` argument
    /// (`None` for an empty batch).
    pub basis: Option<Basis>,
}

/// [`unified_flow_lp`], warm-started from a previously exported [`Basis`].
///
/// A mismatched or stale basis silently degrades to a cold solve; the result
/// is identical either way.
///
/// # Errors
///
/// Same contract as [`unified_flow_lp`].
pub fn unified_flow_lp_warm(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
    warm: Option<&Basis>,
) -> Result<UnifiedFlowOutcome, BaselineError> {
    if files.is_empty() {
        return Ok(UnifiedFlowOutcome {
            assignment: FlowAssignment::new(),
            lp_iterations: 0,
            dual_iterations: 0,
            basis: None,
        });
    }
    let lo = files.iter().map(|f| f.first_slot()).min().unwrap_or(0);
    let hi = files.iter().map(|f| f.last_slot()).max().unwrap_or(lo);

    let mut m = Model::new(Sense::Minimize);
    // Rate variables.
    let mut fvars = BTreeMap::new();
    for (k, f) in files.iter().enumerate() {
        for link in network.links() {
            let v = m.add_var(
                format!("f[{}][{}->{}]", f.id, link.from.0, link.to.0),
                0.0,
                f64::INFINITY,
            );
            fvars.insert((k, link.from.0, link.to.0), v);
        }
    }
    // Charged-volume variables with their prior floor.
    let mut xvars = BTreeMap::new();
    let mut obj = LinExpr::new();
    for link in network.links() {
        let x = m.add_var(
            format!("X[{}->{}]", link.from.0, link.to.0),
            ledger.peak(link.from, link.to),
            f64::INFINITY,
        );
        xvars.insert((link.from.0, link.to.0), x);
        obj.add_term(x, link.price);
    }
    m.set_objective(obj);

    // Conservation (instantaneous) per file.
    for (k, f) in files.iter().enumerate() {
        for node in network.dcs() {
            let mut expr = LinExpr::new();
            for link in network.links() {
                let v = fvars[&(k, link.from.0, link.to.0)];
                if link.from == node {
                    expr.add_term(v, 1.0);
                }
                if link.to == node {
                    expr.add_term(v, -1.0);
                }
            }
            let rhs = if node == f.src {
                f.desired_rate()
            } else if node == f.dst {
                -f.desired_rate()
            } else {
                0.0
            };
            m.eq(expr, rhs);
        }
    }

    // Per-slot capacity and charged-volume envelopes.
    for slot in lo..=hi {
        for link in network.links() {
            let active: Vec<usize> = files
                .iter()
                .enumerate()
                .filter(|(_, f)| f.active_in(slot))
                .map(|(k, _)| k)
                .collect();
            let used = ledger.volume(link.from, link.to, slot);
            let mut load = LinExpr::new();
            for &k in &active {
                load.add_term(fvars[&(k, link.from.0, link.to.0)], 1.0);
            }
            // Capacity.
            m.leq(load.clone(), (link.capacity - used).max(0.0));
            // X_ij ≥ used + load.
            let mut env = load;
            env.add_term(xvars[&(link.from.0, link.to.0)], -1.0);
            m.leq(env, -used);
        }
    }

    let sol = m.solve_warm(&postcard_lp::SimplexOptions::default(), warm)?;
    match sol.status() {
        Status::Optimal => {
            let mut a = FlowAssignment::new();
            for (&(k, i, j), &v) in &fvars {
                let r = sol.value(v);
                if r > 1e-9 {
                    a.add_rate(files[k].id, DcId(i), DcId(j), r);
                }
            }
            Ok(UnifiedFlowOutcome {
                assignment: a,
                lp_iterations: sol.iterations(),
                dual_iterations: sol.dual_iterations(),
                basis: sol.basis().cloned(),
            })
        }
        Status::Infeasible => Err(BaselineError::Infeasible),
        Status::Unbounded => unreachable!("objective bounded below by prior peaks"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::NetworkBuilder;

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    /// D0 →(1) D1 →(2) D2 relay plus expensive direct D0 →(10) D2.
    fn triangle(cap: f64) -> Network {
        NetworkBuilder::new(3)
            .link(d(0), d(1), 1.0, cap)
            .link(d(1), d(2), 2.0, cap)
            .link(d(0), d(2), 10.0, cap)
            .build()
    }

    fn file(rate: f64, deadline: usize) -> TransferRequest {
        TransferRequest::new(FileId(1), d(0), d(2), rate * deadline as f64, deadline, 0)
    }

    #[test]
    fn unified_lp_routes_via_cheap_relay() {
        let net = triangle(5.0);
        let ledger = TrafficLedger::new(3);
        let f = file(2.0, 3);
        let a = unified_flow_lp(&net, &[f], &ledger).unwrap();
        assert!(a.is_valid(&net, &[f], |_, _, _| 0.0));
        assert!((a.rate(FileId(1), d(0), d(1)) - 2.0).abs() < 1e-6);
        let mut l = TrafficLedger::new(3);
        a.apply_to_ledger(&[f], &mut l);
        // Cost per slot: 2·1 + 2·2 = 6.
        assert!((l.cost_per_slot(&net) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn unified_lp_respects_prior_peaks_as_free() {
        let net = triangle(5.0);
        let mut ledger = TrafficLedger::new(3);
        // The direct link already charged at 2 GB/slot (peak), currently idle
        // in the file's window: routing up to 2 direct is free.
        ledger.record(d(0), d(2), 1000, 2.0);
        let f = file(2.0, 3);
        let a = unified_flow_lp(&net, &[f], &ledger).unwrap();
        assert!(a.is_valid(&net, &[f], |_, _, _| 0.0));
        let mut l = ledger.clone();
        a.apply_to_ledger(&[f], &mut l);
        // Optimal: send the whole rate over the already-paid direct link;
        // total cost stays at the prior bill 10·2 = 20 (relay would *add*
        // 6 on top of the sunk 20).
        assert!((l.cost_per_slot(&net) - 20.0).abs() < 1e-6, "{}", l.cost_per_slot(&net));
        assert!((a.rate(FileId(1), d(0), d(2)) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn unified_lp_infeasible_when_rates_do_not_fit() {
        let net = triangle(1.0); // total cut 2 GB/slot
        let ledger = TrafficLedger::new(3);
        let f = file(3.0, 2);
        assert_eq!(unified_flow_lp(&net, &[f], &ledger).unwrap_err(), BaselineError::Infeasible);
    }

    #[test]
    fn two_phase_uses_paid_capacity_first() {
        let net = triangle(5.0);
        let mut ledger = TrafficLedger::new(3);
        // Direct link paid up to 2 GB/slot, idle during the window.
        ledger.record(d(0), d(2), 1000, 2.0);
        let f = file(2.0, 3);
        let out = two_phase_baseline(&net, &[f], &ledger).unwrap();
        assert!((out.lambda_paid - 1.0).abs() < 1e-6, "λ = {}", out.lambda_paid);
        assert!(out.assignment.is_valid(&net, &[f], |_, _, _| 0.0));
        assert!((out.assignment.rate(FileId(1), d(0), d(2)) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn two_phase_routes_remainder_cheaply() {
        let net = triangle(5.0);
        let ledger = TrafficLedger::new(3); // nothing paid yet
        let f = file(2.0, 3);
        let out = two_phase_baseline(&net, &[f], &ledger).unwrap();
        assert!(out.lambda_paid.abs() < 1e-6);
        assert!(out.assignment.is_valid(&net, &[f], |_, _, _| 0.0));
        // Phase 2 = plain min-cost MCF ⇒ relay path.
        assert!((out.assignment.rate(FileId(1), d(0), d(1)) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn two_phase_infeasible_when_over_capacity() {
        let net = triangle(1.0);
        let ledger = TrafficLedger::new(3);
        let f = file(3.0, 2);
        assert_eq!(two_phase_baseline(&net, &[f], &ledger).unwrap_err(), BaselineError::Infeasible);
    }

    #[test]
    fn empty_batch_is_trivial() {
        let net = triangle(5.0);
        let ledger = TrafficLedger::new(3);
        assert!(two_phase_baseline(&net, &[], &ledger).unwrap().assignment.is_empty());
        assert!(unified_flow_lp(&net, &[], &ledger).unwrap().is_empty());
    }

    #[test]
    fn unified_warm_restart_matches_cold() {
        let net = triangle(5.0);
        let ledger = TrafficLedger::new(6);
        let f0 = file(4.0, 2);
        let first = unified_flow_lp_warm(&net, &[f0], &ledger, None).unwrap();
        assert!(first.basis.is_some());
        // Commit and solve a same-shaped follow-up batch, warm and cold.
        let mut ledger2 = ledger.clone();
        first.assignment.apply_to_ledger(&[f0], &mut ledger2);
        let f1 = TransferRequest::new(FileId(2), d(0), d(2), 4.0, 2, 2);
        let cold = unified_flow_lp_warm(&net, &[f1], &ledger2, None).unwrap();
        let warm = unified_flow_lp_warm(&net, &[f1], &ledger2, first.basis.as_ref()).unwrap();
        // Alternate optima may differ in the vertex, never in the bill.
        let bill = |a: &FlowAssignment| {
            let mut l = ledger2.clone();
            a.apply_to_ledger(&[f1], &mut l);
            l.cost_per_slot(&net)
        };
        assert!((bill(&warm.assignment) - bill(&cold.assignment)).abs() < 1e-6);
        assert!(warm.assignment.is_valid(&net, &[f1], |i, j, s| ledger2.volume(i, j, s)));
        assert!(warm.lp_iterations <= cold.lp_iterations);
    }

    #[test]
    fn unified_never_worse_than_two_phase() {
        // The unified LP optimizes the true objective, so its bill must be
        // ≤ the two-phase decomposition's on any instance where both work.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let n = 4;
            let net = Network::complete_with_prices(n, 50.0, |_, _| rng.gen_range(1.0..10.0));
            let files: Vec<TransferRequest> = (0..3)
                .map(|k| {
                    let src = rng.gen_range(0..n);
                    let mut dst = rng.gen_range(0..n);
                    while dst == src {
                        dst = rng.gen_range(0..n);
                    }
                    TransferRequest::new(
                        FileId(k),
                        d(src),
                        d(dst),
                        rng.gen_range(5.0..30.0),
                        rng.gen_range(1..4),
                        0,
                    )
                })
                .collect();
            let ledger = TrafficLedger::new(n);
            let uni = unified_flow_lp(&net, &files, &ledger).unwrap();
            let two = two_phase_baseline(&net, &files, &ledger).unwrap();
            let mut l1 = ledger.clone();
            uni.apply_to_ledger(&files, &mut l1);
            let mut l2 = ledger.clone();
            two.assignment.apply_to_ledger(&files, &mut l2);
            assert!(
                l1.cost_per_slot(&net) <= l2.cost_per_slot(&net) + 1e-5,
                "unified {} vs two-phase {}",
                l1.cost_per_slot(&net),
                l2.cost_per_slot(&net)
            );
        }
    }
}
