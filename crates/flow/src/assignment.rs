//! Per-file constant-rate flow assignments (the flow-based model).
//!
//! In the flow-based approach (paper Sec. II-B) every file `k` is served at
//! its constant desired rate `r_k = F_k / T_k` for exactly `T_k` slots, with
//! *instantaneous* conservation at intermediate datacenters — data entering
//! a relay leaves it within the same slot, because temporal storage is what
//! the flow model removes.

use postcard_net::{DcId, FileId, Network, TrafficLedger, TransferRequest, VOLUME_TOL};
use std::collections::{BTreeMap, BTreeSet};

/// A constraint violation found by [`FlowAssignment::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlowViolation {
    /// A rate is assigned to a link absent from the network.
    MissingLink {
        /// Tail datacenter.
        from: DcId,
        /// Head datacenter.
        to: DcId,
    },
    /// Aggregate rate on a link in some slot exceeds available capacity.
    Capacity {
        /// Tail datacenter.
        from: DcId,
        /// Head datacenter.
        to: DcId,
        /// The offending slot.
        slot: u64,
        /// Aggregate rate of files active in that slot.
        used: f64,
        /// Capacity available in that slot.
        available: f64,
    },
    /// Instantaneous conservation fails at an intermediate datacenter.
    Conservation {
        /// The file.
        file: FileId,
        /// The datacenter with a rate imbalance.
        dc: DcId,
        /// `inflow − outflow` at that datacenter.
        imbalance: f64,
    },
    /// The net rate leaving the source (= entering the destination) differs
    /// from the file's desired rate.
    Delivery {
        /// The file.
        file: FileId,
        /// Net source rate found.
        delivered_rate: f64,
        /// Desired rate `F_k / T_k`.
        expected_rate: f64,
    },
}

/// Constant per-file rates on directed links.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowAssignment {
    /// `(file, from, to) → rate` (GB per slot).
    rates: BTreeMap<(u64, usize, usize), f64>,
}

impl FlowAssignment {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds rate (accumulating) for a file on a link.
    ///
    /// # Panics
    ///
    /// Panics on a self-link or a negative/non-finite rate.
    pub fn add_rate(&mut self, file: FileId, from: DcId, to: DcId, rate: f64) {
        assert!(from != to, "flow assignments have no storage");
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be finite and non-negative");
        if rate <= 0.0 {
            return;
        }
        *self.rates.entry((file.0, from.0, to.0)).or_insert(0.0) += rate;
    }

    /// The rate of `file` on `from → to` (0 if absent).
    pub fn rate(&self, file: FileId, from: DcId, to: DcId) -> f64 {
        self.rates.get(&(file.0, from.0, to.0)).copied().unwrap_or(0.0)
    }

    /// Iterates `(file, from, to, rate)` tuples.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, DcId, DcId, f64)> + '_ {
        self.rates.iter().map(|(&(f, i, j), &r)| (FileId(f), DcId(i), DcId(j), r))
    }

    /// Number of non-zero `(file, link)` cells.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` if no rates are assigned.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Distinct files with assigned rates.
    pub fn files(&self) -> BTreeSet<FileId> {
        self.rates.keys().map(|&(f, _, _)| FileId(f)).collect()
    }

    /// Merges another assignment into this one.
    pub fn merge(&mut self, other: &FlowAssignment) {
        for (f, i, j, r) in other.iter() {
            self.add_rate(f, i, j, r);
        }
    }

    /// The aggregate load a set of files puts on `from → to` during `slot`
    /// (only files active in that slot contribute).
    pub fn link_load(&self, files: &[TransferRequest], from: DcId, to: DcId, slot: u64) -> f64 {
        files.iter().filter(|f| f.active_in(slot)).map(|f| self.rate(f.id, from, to)).sum()
    }

    /// Validates the assignment for `files` against `network`.
    ///
    /// `extra_used(from, to, slot)` reports capacity already consumed by
    /// other traffic in each slot.
    pub fn validate(
        &self,
        network: &Network,
        files: &[TransferRequest],
        mut extra_used: impl FnMut(DcId, DcId, u64) -> f64,
    ) -> Vec<FlowViolation> {
        let mut out = Vec::new();
        let n = network.num_dcs();

        for (_, i, j, _) in self.iter() {
            if !network.has_link(i, j) {
                out.push(FlowViolation::MissingLink { from: i, to: j });
            }
        }

        // Conservation + delivery per file.
        for f in files {
            let mut net = vec![0.0f64; n]; // inflow − outflow
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let r = self.rate(f.id, DcId(i), DcId(j));
                    net[i] -= r;
                    net[j] += r;
                }
            }
            for (i, &imbalance) in net.iter().enumerate() {
                if i == f.src.0 || i == f.dst.0 {
                    continue;
                }
                if imbalance.abs() > VOLUME_TOL {
                    out.push(FlowViolation::Conservation { file: f.id, dc: DcId(i), imbalance });
                }
            }
            let delivered = -net[f.src.0];
            let expected = f.desired_rate();
            if (delivered - expected).abs() > VOLUME_TOL
                || (net[f.dst.0] - expected).abs() > VOLUME_TOL
            {
                out.push(FlowViolation::Delivery {
                    file: f.id,
                    delivered_rate: delivered,
                    expected_rate: expected,
                });
            }
        }

        // Capacity per (link, slot) across the union of windows.
        if let (Some(lo), Some(hi)) =
            (files.iter().map(|f| f.first_slot()).min(), files.iter().map(|f| f.last_slot()).max())
        {
            for slot in lo..=hi {
                for link in network.links() {
                    let used = self.link_load(files, link.from, link.to, slot);
                    if used <= VOLUME_TOL {
                        continue;
                    }
                    let available = link.capacity - extra_used(link.from, link.to, slot);
                    if used > available + VOLUME_TOL {
                        out.push(FlowViolation::Capacity {
                            from: link.from,
                            to: link.to,
                            slot,
                            used,
                            available,
                        });
                    }
                }
            }
        }
        out
    }

    /// Convenience: `true` when [`FlowAssignment::validate`] finds nothing.
    pub fn is_valid(
        &self,
        network: &Network,
        files: &[TransferRequest],
        extra_used: impl FnMut(DcId, DcId, u64) -> f64,
    ) -> bool {
        self.validate(network, files, extra_used).is_empty()
    }

    /// Commits the assignment into a ledger: every file contributes its rate
    /// on each of its links for each slot of its active window.
    pub fn apply_to_ledger(&self, files: &[TransferRequest], ledger: &mut TrafficLedger) {
        for f in files {
            for slot in f.first_slot()..=f.last_slot() {
                for (&(fid, i, j), &r) in &self.rates {
                    if fid == f.id.0 && r > 0.0 {
                        ledger.record(DcId(i), DcId(j), slot, r);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::NetworkBuilder;

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    fn triangle() -> Network {
        NetworkBuilder::new(3)
            .link(d(0), d(2), 3.0, 5.0)
            .link(d(0), d(1), 1.0, 5.0)
            .link(d(1), d(2), 2.0, 5.0)
            .build()
    }

    fn file() -> TransferRequest {
        TransferRequest::new(FileId(1), d(0), d(2), 6.0, 3, 0) // rate 2
    }

    #[test]
    fn valid_split_flow() {
        let mut a = FlowAssignment::new();
        // 1 GB/slot direct, 1 GB/slot via relay.
        a.add_rate(FileId(1), d(0), d(2), 1.0);
        a.add_rate(FileId(1), d(0), d(1), 1.0);
        a.add_rate(FileId(1), d(1), d(2), 1.0);
        let v = a.validate(&triangle(), &[file()], |_, _, _| 0.0);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn conservation_violation() {
        let mut a = FlowAssignment::new();
        a.add_rate(FileId(1), d(0), d(2), 1.0);
        a.add_rate(FileId(1), d(0), d(1), 1.0); // enters relay, never leaves
        let v = a.validate(&triangle(), &[file()], |_, _, _| 0.0);
        assert!(v.iter().any(|x| matches!(x, FlowViolation::Conservation { .. })), "{v:?}");
    }

    #[test]
    fn short_delivery_violation() {
        let mut a = FlowAssignment::new();
        a.add_rate(FileId(1), d(0), d(2), 1.5); // rate 2 expected
        let v = a.validate(&triangle(), &[file()], |_, _, _| 0.0);
        assert!(v.iter().any(|x| matches!(x, FlowViolation::Delivery { .. })));
    }

    #[test]
    fn capacity_violation_with_two_files() {
        let f1 = file();
        let f2 = TransferRequest::new(FileId(2), d(0), d(2), 12.0, 3, 1); // rate 4, slots 1..=3
        let mut a = FlowAssignment::new();
        a.add_rate(FileId(1), d(0), d(2), 2.0);
        a.add_rate(FileId(2), d(0), d(2), 4.0);
        // Slots 1..=2 carry 6 > cap 5.
        let v = a.validate(&triangle(), &[f1, f2], |_, _, _| 0.0);
        assert!(
            v.iter().any(
                |x| matches!(x, FlowViolation::Capacity { slot, .. } if *slot == 1 || *slot == 2)
            ),
            "{v:?}"
        );
    }

    #[test]
    fn missing_link_violation() {
        let mut a = FlowAssignment::new();
        a.add_rate(FileId(1), d(2), d(0), 2.0);
        let v = a.validate(&triangle(), &[file()], |_, _, _| 0.0);
        assert!(v.iter().any(|x| matches!(x, FlowViolation::MissingLink { .. })));
    }

    #[test]
    fn ledger_commitment_and_cost() {
        let mut a = FlowAssignment::new();
        a.add_rate(FileId(1), d(0), d(1), 2.0);
        a.add_rate(FileId(1), d(1), d(2), 2.0);
        let mut ledger = TrafficLedger::new(3);
        a.apply_to_ledger(&[file()], &mut ledger);
        // 2 GB/slot for 3 slots on both relay links.
        assert_eq!(ledger.volume(d(0), d(1), 0), 2.0);
        assert_eq!(ledger.volume(d(1), d(2), 2), 2.0);
        assert_eq!(ledger.peak(d(0), d(1)), 2.0);
        // Cost per slot: 1·2 + 2·2 = 6.
        assert!((ledger.cost_per_slot(&triangle()) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn merge_and_accessors() {
        let mut a = FlowAssignment::new();
        a.add_rate(FileId(1), d(0), d(1), 1.0);
        let mut b = FlowAssignment::new();
        b.add_rate(FileId(1), d(0), d(1), 0.5);
        b.add_rate(FileId(2), d(1), d(2), 2.0);
        a.merge(&b);
        assert_eq!(a.rate(FileId(1), d(0), d(1)), 1.5);
        assert_eq!(a.len(), 2);
        assert_eq!(a.files().len(), 2);
    }

    #[test]
    #[should_panic(expected = "no storage")]
    fn self_link_rate_rejected() {
        FlowAssignment::new().add_rate(FileId(0), d(1), d(1), 1.0);
    }
}
