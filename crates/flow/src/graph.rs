//! A residual flow network for combinatorial flow algorithms.

/// Node identifier (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Edge identifier returned by [`FlowNetwork::add_edge`]; the paired reverse
/// (residual) edge is `EdgeId(id.0 ^ 1)` internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub to: usize,
    pub cap: f64,
    pub cost: f64,
    pub flow: f64,
}

/// A directed graph with residual edges, for max-flow / min-cost-flow.
///
/// ```
/// use postcard_flow::{dinic_max_flow, FlowNetwork, NodeId};
///
/// let mut g = FlowNetwork::new(4);
/// g.add_edge(NodeId(0), NodeId(1), 3.0, 0.0);
/// g.add_edge(NodeId(0), NodeId(2), 2.0, 0.0);
/// g.add_edge(NodeId(1), NodeId(3), 2.0, 0.0);
/// g.add_edge(NodeId(2), NodeId(3), 3.0, 0.0);
/// let max = dinic_max_flow(&mut g, NodeId(0), NodeId(3));
/// assert!((max - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    pub(crate) edges: Vec<Edge>,
    pub(crate) adj: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self { edges: Vec::new(), adj: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a directed edge with `cap ≥ 0` and unit cost `cost`, returning
    /// its id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or a negative/NaN capacity.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: f64, cost: f64) -> EdgeId {
        assert!(from.0 < self.adj.len() && to.0 < self.adj.len(), "node out of range");
        assert!(cap >= 0.0 && !cap.is_nan(), "capacity must be non-negative");
        assert!(!cost.is_nan(), "cost must be a number");
        let id = self.edges.len();
        self.edges.push(Edge { to: to.0, cap, cost, flow: 0.0 });
        self.edges.push(Edge { to: from.0, cap: 0.0, cost: -cost, flow: 0.0 });
        self.adj[from.0].push(id);
        self.adj[to.0].push(id + 1);
        EdgeId(id)
    }

    /// The flow currently on a forward edge.
    pub fn flow(&self, e: EdgeId) -> f64 {
        self.edges[e.0].flow
    }

    /// The residual capacity of a forward edge.
    pub fn residual(&self, e: EdgeId) -> f64 {
        self.edges[e.0].cap - self.edges[e.0].flow
    }

    /// Resets all flows to zero (capacities and costs unchanged).
    pub fn reset_flows(&mut self) {
        for e in &mut self.edges {
            e.flow = 0.0;
        }
    }

    /// Pushes `amount` through internal edge `idx`, updating the residual
    /// pair.
    pub(crate) fn push(&mut self, idx: usize, amount: f64) {
        self.edges[idx].flow += amount;
        self.edges[idx ^ 1].flow -= amount;
    }

    /// Residual capacity of internal edge `idx`.
    pub(crate) fn res(&self, idx: usize) -> f64 {
        self.edges[idx].cap - self.edges[idx].flow
    }

    /// Iterates the forward edges as `(id, from, to, capacity, cost)`.
    pub fn forward_edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, f64, f64)> + '_ {
        self.edges.iter().enumerate().step_by(2).map(|(i, e)| {
            let from = self.edges[i ^ 1].to;
            (EdgeId(i), NodeId(from), NodeId(e.to), e.cap, e.cost)
        })
    }

    /// Total cost of the current flow: `Σ flow_e · cost_e` over forward
    /// edges.
    pub fn total_cost(&self) -> f64 {
        self.edges.iter().step_by(2).map(|e| e.flow.max(0.0) * e.cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_inspect_edges() {
        let mut g = FlowNetwork::new(3);
        let e = g.add_edge(NodeId(0), NodeId(1), 5.0, 2.0);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.flow(e), 0.0);
        assert_eq!(g.residual(e), 5.0);
    }

    #[test]
    fn push_updates_residual_pair() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(NodeId(0), NodeId(1), 5.0, 1.0);
        g.push(e.0, 3.0);
        assert_eq!(g.flow(e), 3.0);
        assert_eq!(g.residual(e), 2.0);
        // Reverse edge gained residual capacity 3.
        assert_eq!(g.res(e.0 ^ 1), 3.0);
        assert!((g.total_cost() - 3.0).abs() < 1e-12);
        g.reset_flows();
        assert_eq!(g.flow(e), 0.0);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn bad_endpoint_panics() {
        FlowNetwork::new(1).add_edge(NodeId(0), NodeId(1), 1.0, 0.0);
    }
}
