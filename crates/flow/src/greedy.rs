//! The cheapest-available-path greedy allocator.
//!
//! This is the allocator the paper narrates around Fig. 3: each file takes
//! the *cheapest available path* at its desired rate; when the cheapest path
//! lacks capacity the file takes the cheapest path that still has room,
//! splitting across paths when no single path suffices. Files are processed
//! in the order given (arrival order in the simulator).

use crate::assignment::FlowAssignment;
use postcard_net::paths::cheapest_path;
use postcard_net::{FileId, Network, TrafficLedger, TransferRequest};
use std::collections::BTreeMap;

const EPS: f64 = 1e-9;

/// Result of [`greedy_cheapest_path`].
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyOutcome {
    /// Rates assigned (files may be partially routed).
    pub assignment: FlowAssignment,
    /// Files the greedy could not fully route, with the unrouted rate.
    pub unrouted: Vec<(FileId, f64)>,
}

/// Greedily routes each file's desired rate over cheapest available paths.
///
/// Availability is computed per `(link, slot)` from the ledger's residual
/// capacities; a path is *available* to a file when every hop has spare rate
/// across the file's whole active window.
pub fn greedy_cheapest_path(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
) -> GreedyOutcome {
    // Spare capacity per (link, slot) shared across files.
    let mut used: BTreeMap<(usize, usize, u64), f64> = BTreeMap::new();
    let mut assignment = FlowAssignment::new();
    let mut unrouted = Vec::new();

    for f in files {
        let mut remaining = f.desired_rate();
        while remaining > EPS {
            // Per-link availability = min over the file's window.
            let mut avail: BTreeMap<(usize, usize), f64> = BTreeMap::new();
            for link in network.links() {
                let mut a = f64::INFINITY;
                for slot in f.first_slot()..=f.last_slot() {
                    let spare = ledger.residual(network, link.from, link.to, slot)
                        - used.get(&(link.from.0, link.to.0, slot)).copied().unwrap_or(0.0);
                    a = a.min(spare);
                }
                avail.insert((link.from.0, link.to.0), a.max(0.0));
            }
            let Some(path) = cheapest_path(network, f.src, f.dst, |u, v| avail[&(u.0, v.0)] > EPS)
            else {
                unrouted.push((f.id, remaining));
                break;
            };
            let bottleneck =
                path.hops.iter().map(|&(u, v)| avail[&(u.0, v.0)]).fold(f64::INFINITY, f64::min);
            let amount = remaining.min(bottleneck);
            if amount <= EPS {
                unrouted.push((f.id, remaining));
                break;
            }
            for &(u, v) in &path.hops {
                assignment.add_rate(f.id, u, v, amount);
                for slot in f.first_slot()..=f.last_slot() {
                    *used.entry((u.0, v.0, slot)).or_insert(0.0) += amount;
                }
            }
            remaining -= amount;
        }
    }
    GreedyOutcome { assignment, unrouted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{DcId, NetworkBuilder};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    fn triangle(cap: f64) -> Network {
        NetworkBuilder::new(3)
            .link(d(0), d(1), 1.0, cap)
            .link(d(1), d(2), 2.0, cap)
            .link(d(0), d(2), 10.0, cap)
            .build()
    }

    #[test]
    fn takes_cheapest_path() {
        let net = triangle(5.0);
        let f = TransferRequest::new(FileId(1), d(0), d(2), 6.0, 3, 0);
        let out = greedy_cheapest_path(&net, &[f], &TrafficLedger::new(3));
        assert!(out.unrouted.is_empty());
        assert!((out.assignment.rate(FileId(1), d(0), d(1)) - 2.0).abs() < 1e-9);
        assert!(out.assignment.rate(FileId(1), d(0), d(2)) < 1e-9);
        assert!(out.assignment.is_valid(&net, &[f], |_, _, _| 0.0));
    }

    #[test]
    fn second_file_displaced_to_expensive_path() {
        // First file saturates the relay; second must go direct.
        let net = triangle(2.0);
        let f1 = TransferRequest::new(FileId(1), d(0), d(2), 6.0, 3, 0); // rate 2
        let f2 = TransferRequest::new(FileId(2), d(0), d(2), 3.0, 3, 0); // rate 1
        let out = greedy_cheapest_path(&net, &[f1, f2], &TrafficLedger::new(3));
        assert!(out.unrouted.is_empty(), "{:?}", out.unrouted);
        assert!((out.assignment.rate(FileId(1), d(0), d(1)) - 2.0).abs() < 1e-9);
        assert!((out.assignment.rate(FileId(2), d(0), d(2)) - 1.0).abs() < 1e-9);
        assert!(out.assignment.is_valid(&net, &[f1, f2], |_, _, _| 0.0));
    }

    #[test]
    fn splits_across_paths_when_needed() {
        let net = triangle(2.0);
        let f = TransferRequest::new(FileId(1), d(0), d(2), 9.0, 3, 0); // rate 3 > any path
        let out = greedy_cheapest_path(&net, &[f], &TrafficLedger::new(3));
        assert!(out.unrouted.is_empty());
        assert!((out.assignment.rate(FileId(1), d(0), d(1)) - 2.0).abs() < 1e-9);
        assert!((out.assignment.rate(FileId(1), d(0), d(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reports_unroutable_remainder() {
        let net = triangle(1.0);
        let f = TransferRequest::new(FileId(1), d(0), d(2), 9.0, 3, 0); // rate 3 > cut 2
        let out = greedy_cheapest_path(&net, &[f], &TrafficLedger::new(3));
        assert_eq!(out.unrouted.len(), 1);
        assert_eq!(out.unrouted[0].0, FileId(1));
        assert!((out.unrouted[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn respects_prior_ledger_usage() {
        let net = triangle(2.0);
        let mut ledger = TrafficLedger::new(3);
        // Relay first hop already fully used in slot 1.
        ledger.record(d(0), d(1), 1, 2.0);
        let f = TransferRequest::new(FileId(1), d(0), d(2), 3.0, 3, 0); // rate 1, slots 0..=2
        let out = greedy_cheapest_path(&net, &[f], &ledger);
        assert!(out.unrouted.is_empty());
        // Relay unusable across the whole window ⇒ direct.
        assert!((out.assignment.rate(FileId(1), d(0), d(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_destination_unrouted() {
        let net = NetworkBuilder::new(3).link(d(0), d(1), 1.0, 5.0).build();
        let f = TransferRequest::new(FileId(1), d(0), d(2), 2.0, 2, 0);
        let out = greedy_cheapest_path(&net, &[f], &TrafficLedger::new(3));
        assert_eq!(out.unrouted.len(), 1);
        assert!(out.assignment.is_empty());
    }
}
