//! LP formulations of the two classic multicommodity problems the paper's
//! flow-based decomposition rests on (Sec. II-B): the **maximum concurrent
//! flow** problem and the **minimum-cost multicommodity flow** problem.

use postcard_lp::{LinExpr, Model, Sense, Status, Variable};
use postcard_net::{DcId, Network};
use std::collections::BTreeMap;

/// One commodity: a demand of `demand` (GB/slot) from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commodity {
    /// Caller-chosen id (e.g. the file id).
    pub id: u64,
    /// Source datacenter.
    pub src: DcId,
    /// Destination datacenter.
    pub dst: DcId,
    /// Demanded rate (GB/slot), > 0.
    pub demand: f64,
}

/// A multicommodity rate solution.
#[derive(Debug, Clone, PartialEq)]
pub struct McfSolution {
    /// `(commodity id, from, to) → rate`.
    pub rates: BTreeMap<(u64, usize, usize), f64>,
    /// Objective value: total cost for [`min_cost_multicommodity`], the
    /// routed fraction λ for [`max_concurrent_flow`].
    pub objective: f64,
}

impl McfSolution {
    /// Rate of a commodity on a link.
    pub fn rate(&self, id: u64, from: DcId, to: DcId) -> f64 {
        self.rates.get(&(id, from.0, to.0)).copied().unwrap_or(0.0)
    }
}

/// Builds per-commodity link-rate variables and conservation constraints
/// scaled by `scale` (a fixed factor or a λ variable share).
fn conservation_rows(
    m: &mut Model,
    network: &Network,
    commodities: &[Commodity],
    vars: &BTreeMap<(usize, usize, usize), Variable>,
    lambda: Option<Variable>,
) {
    for (c_idx, c) in commodities.iter().enumerate() {
        for node in network.dcs() {
            let mut expr = LinExpr::new();
            for link in network.links() {
                let v = vars[&(c_idx, link.from.0, link.to.0)];
                if link.from == node {
                    expr.add_term(v, 1.0);
                }
                if link.to == node {
                    expr.add_term(v, -1.0);
                }
            }
            // Net outflow must equal +demand at src, −demand at dst, 0 else.
            let sign = if node == c.src {
                1.0
            } else if node == c.dst {
                -1.0
            } else {
                0.0
            };
            match lambda {
                // postcard-analyze: allow(PA101) — sign is exactly ±1 or 0.
                Some(l) if sign != 0.0 => {
                    expr.add_term(l, -sign * c.demand);
                    m.eq(expr, 0.0);
                }
                _ => {
                    m.eq(expr, sign * c.demand);
                }
            }
        }
    }
}

fn capacity_rows(
    m: &mut Model,
    network: &Network,
    commodities: &[Commodity],
    vars: &BTreeMap<(usize, usize, usize), Variable>,
    mut capacity: impl FnMut(DcId, DcId) -> f64,
) {
    for link in network.links() {
        let mut expr = LinExpr::new();
        for c_idx in 0..commodities.len() {
            expr.add_term(vars[&(c_idx, link.from.0, link.to.0)], 1.0);
        }
        m.leq(expr, capacity(link.from, link.to).max(0.0));
    }
}

fn link_vars(
    m: &mut Model,
    network: &Network,
    commodities: &[Commodity],
) -> BTreeMap<(usize, usize, usize), Variable> {
    let mut vars = BTreeMap::new();
    for (c_idx, c) in commodities.iter().enumerate() {
        for link in network.links() {
            let v = m.add_var(
                format!("f[{}][{}->{}]", c.id, link.from.0, link.to.0),
                0.0,
                f64::INFINITY,
            );
            vars.insert((c_idx, link.from.0, link.to.0), v);
        }
    }
    vars
}

fn extract_rates(
    sol: &postcard_lp::Solution,
    commodities: &[Commodity],
    vars: &BTreeMap<(usize, usize, usize), Variable>,
) -> BTreeMap<(u64, usize, usize), f64> {
    let mut rates = BTreeMap::new();
    for (&(c_idx, i, j), &v) in vars {
        let r = sol.value(v);
        if r > 1e-9 {
            *rates.entry((commodities[c_idx].id, i, j)).or_insert(0.0) += r;
        }
    }
    rates
}

/// Maximum concurrent flow: find the largest fraction `λ` (optionally capped
/// at `lambda_cap`) such that *every* commodity can route `λ · demand`
/// simultaneously within `capacity(link)`.
///
/// Returns the rates at the optimal λ; `objective` is λ itself. An empty
/// commodity list yields λ = `lambda_cap.unwrap_or(0.0)` trivially with no
/// rates.
///
/// # Errors
///
/// Propagates [`postcard_lp::LpError`] from the solver. The problem is
/// always feasible (λ = 0 works).
pub fn max_concurrent_flow(
    network: &Network,
    commodities: &[Commodity],
    capacity: impl FnMut(DcId, DcId) -> f64,
    lambda_cap: Option<f64>,
) -> Result<McfSolution, postcard_lp::LpError> {
    if commodities.is_empty() {
        return Ok(McfSolution { rates: BTreeMap::new(), objective: lambda_cap.unwrap_or(0.0) });
    }
    let mut m = Model::new(Sense::Maximize);
    let lambda = m.add_var("lambda", 0.0, lambda_cap.unwrap_or(f64::INFINITY));
    let vars = link_vars(&mut m, network, commodities);
    m.set_objective(LinExpr::from(lambda));
    conservation_rows(&mut m, network, commodities, &vars, Some(lambda));
    capacity_rows(&mut m, network, commodities, &vars, capacity);
    let sol = m.solve()?;
    debug_assert_eq!(sol.status(), Status::Optimal, "λ = 0 is always feasible");
    Ok(McfSolution { rates: extract_rates(&sol, commodities, &vars), objective: sol.value(lambda) })
}

/// Minimum-cost multicommodity flow: route *all* demands within
/// `capacity(link)` at minimum total cost `Σ a_ij · Σ_c f_ij^c` (prices from
/// the network).
///
/// Returns `Ok(None)` when the demands do not fit (infeasible).
///
/// # Errors
///
/// Propagates [`postcard_lp::LpError`] from the solver.
pub fn min_cost_multicommodity(
    network: &Network,
    commodities: &[Commodity],
    capacity: impl FnMut(DcId, DcId) -> f64,
) -> Result<Option<McfSolution>, postcard_lp::LpError> {
    if commodities.is_empty() {
        return Ok(Some(McfSolution { rates: BTreeMap::new(), objective: 0.0 }));
    }
    let mut m = Model::new(Sense::Minimize);
    let vars = link_vars(&mut m, network, commodities);
    let mut obj = LinExpr::new();
    for link in network.links() {
        for c_idx in 0..commodities.len() {
            obj.add_term(vars[&(c_idx, link.from.0, link.to.0)], link.price);
        }
    }
    m.set_objective(obj);
    conservation_rows(&mut m, network, commodities, &vars, None);
    capacity_rows(&mut m, network, commodities, &vars, capacity);
    let sol = m.solve()?;
    match sol.status() {
        Status::Optimal => Ok(Some(McfSolution {
            rates: extract_rates(&sol, commodities, &vars),
            objective: sol.objective(),
        })),
        Status::Infeasible => Ok(None),
        Status::Unbounded => unreachable!("costs are non-negative"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::NetworkBuilder;

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    /// D0 →(1) D1 →(2) D2 and direct D0 →(10) D2, all capacity 5.
    fn triangle() -> Network {
        NetworkBuilder::new(3)
            .link(d(0), d(1), 1.0, 5.0)
            .link(d(1), d(2), 2.0, 5.0)
            .link(d(0), d(2), 10.0, 5.0)
            .build()
    }

    #[test]
    fn mcmf_prefers_cheap_relay() {
        let c = [Commodity { id: 1, src: d(0), dst: d(2), demand: 4.0 }];
        let sol =
            min_cost_multicommodity(&triangle(), &c, |i, j| triangle().capacity(i, j).unwrap())
                .unwrap()
                .unwrap();
        // All 4 via the relay: cost 4·(1+2) = 12.
        assert!((sol.objective - 12.0).abs() < 1e-6, "{}", sol.objective);
        assert!((sol.rate(1, d(0), d(1)) - 4.0).abs() < 1e-6);
        assert!(sol.rate(1, d(0), d(2)) < 1e-6);
    }

    #[test]
    fn mcmf_spills_when_relay_saturates() {
        let c = [Commodity { id: 1, src: d(0), dst: d(2), demand: 8.0 }];
        let sol =
            min_cost_multicommodity(&triangle(), &c, |i, j| triangle().capacity(i, j).unwrap())
                .unwrap()
                .unwrap();
        // 5 via relay (cost 15) + 3 direct (cost 30) = 45.
        assert!((sol.objective - 45.0).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn mcmf_infeasible_when_demand_exceeds_cut() {
        let c = [Commodity { id: 1, src: d(0), dst: d(2), demand: 11.0 }];
        let sol =
            min_cost_multicommodity(&triangle(), &c, |i, j| triangle().capacity(i, j).unwrap())
                .unwrap();
        assert!(sol.is_none());
    }

    #[test]
    fn mcmf_two_commodities_share_capacity() {
        let c = [
            Commodity { id: 1, src: d(0), dst: d(2), demand: 5.0 },
            Commodity { id: 2, src: d(1), dst: d(2), demand: 5.0 },
        ];
        let sol =
            min_cost_multicommodity(&triangle(), &c, |i, j| triangle().capacity(i, j).unwrap())
                .unwrap()
                .unwrap();
        // Commodity 2 fills D1→D2 (cost 10); commodity 1 must go direct
        // (cost 50). Total 60.
        assert!((sol.objective - 60.0).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn concurrent_flow_full_routing() {
        let c = [Commodity { id: 1, src: d(0), dst: d(2), demand: 4.0 }];
        let sol = max_concurrent_flow(
            &triangle(),
            &c,
            |i, j| triangle().capacity(i, j).unwrap(),
            Some(1.0),
        )
        .unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn concurrent_flow_partial_when_tight() {
        // Demand 20 against a 10-capacity cut: λ = 0.5.
        let c = [Commodity { id: 1, src: d(0), dst: d(2), demand: 20.0 }];
        let sol = max_concurrent_flow(
            &triangle(),
            &c,
            |i, j| triangle().capacity(i, j).unwrap(),
            Some(1.0),
        )
        .unwrap();
        assert!((sol.objective - 0.5).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn concurrent_flow_zero_capacity() {
        let c = [Commodity { id: 1, src: d(0), dst: d(2), demand: 1.0 }];
        let sol = max_concurrent_flow(&triangle(), &c, |_, _| 0.0, Some(1.0)).unwrap();
        assert!(sol.objective.abs() < 1e-7);
    }

    #[test]
    fn empty_commodities_trivial() {
        let sol = max_concurrent_flow(&triangle(), &[], |_, _| 1.0, Some(1.0)).unwrap();
        assert_eq!(sol.objective, 1.0);
        let sol = min_cost_multicommodity(&triangle(), &[], |_, _| 1.0).unwrap().unwrap();
        assert_eq!(sol.objective, 0.0);
    }
}
