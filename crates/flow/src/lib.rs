//! # postcard-flow — flow algorithms and the Postcard flow-based baseline
//!
//! The Postcard paper compares its store-and-forward optimizer against a
//! **flow-based approach** (Sec. II-B) that forbids temporal storage: each
//! file becomes a *flow* at its constant desired rate `F_k / T_k`, routed
//! (possibly split over several multi-hop paths) so that traffic costs are
//! minimized. This crate provides that baseline and the classic flow
//! machinery it rests on:
//!
//! * [`FlowNetwork`] — a residual graph for combinatorial algorithms;
//! * [`dinic_max_flow`] — blocking-flow max-flow;
//! * [`min_cost_flow`] — successive shortest paths with potentials;
//! * [`FlowAssignment`] — per-file constant rates on links, with
//!   instantaneous-conservation validation and ledger commitment;
//! * [`max_concurrent_flow`] — LP: route the largest common fraction λ of
//!   all demands within given capacities;
//! * [`min_cost_multicommodity`] — LP: route all demands at minimum cost;
//! * [`two_phase_baseline`] — the paper's decomposition: first fill
//!   *already-paid* capacity (max concurrent flow), then route the remainder
//!   at minimum extra cost (min-cost multicommodity flow);
//! * [`unified_flow_lp`] — the strongest storage-free baseline: one LP in
//!   the exact percentile cost model (used for the figure reproductions);
//! * [`greedy_cheapest_path`] — the cheapest-available-path allocator
//!   narrated around the paper's Fig. 3;
//! * [`AlapScheduler`] — deadline-guaranteed As-Late-As-Possible admission
//!   against a persistent [`ResidualGrid`], the DCRoute-style fast path
//!   that decides admit/reject without building an LP.
//!
//! # Example
//!
//! Route a file at its desired rate through the cheapest available path and
//! decompose the result:
//!
//! ```
//! use postcard_flow::{decompose_flow, greedy_cheapest_path};
//! use postcard_net::{DcId, FileId, NetworkBuilder, TrafficLedger, TransferRequest};
//!
//! let network = NetworkBuilder::new(3)
//!     .link(DcId(0), DcId(1), 1.0, 10.0)
//!     .link(DcId(1), DcId(2), 2.0, 10.0)
//!     .link(DcId(0), DcId(2), 9.0, 10.0)
//!     .build();
//! let file = TransferRequest::new(FileId(1), DcId(0), DcId(2), 6.0, 3, 0);
//! let out = greedy_cheapest_path(&network, &[file], &TrafficLedger::new(3));
//! assert!(out.unrouted.is_empty());
//! let paths = decompose_flow(&out.assignment, &file, 3);
//! assert_eq!(paths.paths[0].nodes, vec![DcId(0), DcId(1), DcId(2)]); // cheap relay
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alap;
mod assignment;
mod baseline;
mod decompose;
mod graph;
mod greedy;
mod lp_flows;
mod maxflow;
mod mincost;

pub use alap::{AlapRejection, AlapScheduler, ResidualGrid};
pub use assignment::{FlowAssignment, FlowViolation};
pub use baseline::{
    two_phase_baseline, unified_flow_lp, unified_flow_lp_warm, BaselineError, FlowBaselineOutcome,
    UnifiedFlowOutcome,
};
pub use decompose::{decompose_flow, Decomposition, PathShare};
pub use graph::{EdgeId, FlowNetwork, NodeId};
pub use greedy::{greedy_cheapest_path, GreedyOutcome};
pub use lp_flows::{max_concurrent_flow, min_cost_multicommodity, Commodity, McfSolution};
pub use maxflow::{dinic_max_flow, edmonds_karp_max_flow};
pub use mincost::{cycle_canceling_min_cost, min_cost_flow, MinCostOutcome};
