//! Path decomposition of flow assignments.
//!
//! An LP returns *link* rates; operators and tests often want *paths* ("30 %
//! of file 7 goes D2 → D1 → D4"). This module decomposes a file's rates
//! into loopless source→destination paths by repeatedly extracting the
//! bottleneck path from the positive-rate subgraph — the classic flow
//! decomposition theorem made executable. Rate not reachable this way
//! (degenerate zero-cost cycles, numerical crumbs) is reported rather than
//! silently dropped.

use crate::assignment::FlowAssignment;
use postcard_net::{DcId, TransferRequest};

const EPS: f64 = 1e-9;

/// One extracted path with its rate.
#[derive(Debug, Clone, PartialEq)]
pub struct PathShare {
    /// The datacenters visited, source first, destination last.
    pub nodes: Vec<DcId>,
    /// The rate carried along this path (GB/slot).
    pub rate: f64,
}

impl PathShare {
    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// `true` if this path traverses the directed link `from → to`.
    pub fn crosses(&self, from: DcId, to: DcId) -> bool {
        self.nodes.windows(2).any(|w| w[0] == from && w[1] == to)
    }
}

/// The decomposition of one file's flow.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Source→destination paths, in extraction order (largest-bottleneck
    /// first is *not* guaranteed; sum of rates ≈ the file's desired rate).
    pub paths: Vec<PathShare>,
    /// Rate left on links after all s→t paths were extracted (cycles or
    /// numerical residue; 0 for clean LP solutions).
    pub residual_rate: f64,
}

impl Decomposition {
    /// Total rate across extracted paths.
    pub fn total_rate(&self) -> f64 {
        self.paths.iter().map(|p| p.rate).sum()
    }

    /// The longest path's hop count (the file's worst-case path length).
    pub fn max_hops(&self) -> usize {
        self.paths.iter().map(PathShare::hops).max().unwrap_or(0)
    }

    /// Total rate this decomposition sends over the directed link
    /// `from → to`.
    ///
    /// The sharded runtime's reconciler uses this to *attribute* shared-link
    /// over-commitment: when two shards' plans collide on a link, the
    /// conflicted shard's flow is decomposed and the paths crossing the hot
    /// link identify exactly which transfers are contending.
    pub fn rate_over(&self, from: DcId, to: DcId) -> f64 {
        self.paths.iter().filter(|p| p.crosses(from, to)).map(|p| p.rate).sum()
    }

    /// The distinct directed links used by any extracted path, in
    /// first-traversal order.
    pub fn links(&self) -> Vec<(DcId, DcId)> {
        let mut seen = Vec::new();
        for p in &self.paths {
            for w in p.nodes.windows(2) {
                if !seen.contains(&(w[0], w[1])) {
                    seen.push((w[0], w[1]));
                }
            }
        }
        seen
    }
}

/// Decomposes `file`'s rates in `assignment` into paths.
///
/// `num_dcs` bounds the node ids that may appear (pass
/// `network.num_dcs()`).
pub fn decompose_flow(
    assignment: &FlowAssignment,
    file: &TransferRequest,
    num_dcs: usize,
) -> Decomposition {
    // Dense residual rate matrix for this file.
    let mut rate = vec![0.0f64; num_dcs * num_dcs];
    for (fid, from, to, r) in assignment.iter() {
        if fid == file.id && from.0 < num_dcs && to.0 < num_dcs {
            rate[from.0 * num_dcs + to.0] += r;
        }
    }
    let mut paths = Vec::new();
    // DFS for a simple path src → dst through positive-rate links.
    while let Some(nodes) = find_path(&rate, num_dcs, file.src.0, file.dst.0) {
        let bottleneck =
            nodes.windows(2).map(|w| rate[w[0] * num_dcs + w[1]]).fold(f64::INFINITY, f64::min);
        if bottleneck <= EPS {
            break;
        }
        for w in nodes.windows(2) {
            rate[w[0] * num_dcs + w[1]] -= bottleneck;
        }
        paths.push(PathShare { nodes: nodes.into_iter().map(DcId).collect(), rate: bottleneck });
        if paths.len() > num_dcs * num_dcs {
            break; // defensive: decomposition of a valid flow needs ≤ |E| paths
        }
    }
    let residual_rate = rate.iter().filter(|&&r| r > EPS).sum();
    Decomposition { paths, residual_rate }
}

/// Simple DFS path in the positive-rate subgraph.
fn find_path(rate: &[f64], n: usize, src: usize, dst: usize) -> Option<Vec<usize>> {
    let mut stack = vec![src];
    let mut on_path = vec![false; n];
    on_path[src] = true;
    // Iterative DFS with explicit next-neighbor cursors.
    let mut cursor = vec![0usize; n];
    while let Some(&u) = stack.last() {
        if u == dst {
            return Some(stack);
        }
        let mut advanced = false;
        while cursor[u] < n {
            let v = cursor[u];
            cursor[u] += 1;
            if !on_path[v] && rate[u * n + v] > EPS {
                on_path[v] = true;
                stack.push(v);
                advanced = true;
                break;
            }
        }
        if !advanced {
            if let Some(popped) = stack.pop() {
                on_path[popped] = false;
                cursor[popped] = 0;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{FileId, NetworkBuilder, TrafficLedger};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    fn file(rate: f64, deadline: usize) -> TransferRequest {
        TransferRequest::new(FileId(1), d(0), d(3), rate * deadline as f64, deadline, 0)
    }

    #[test]
    fn single_path_decomposition() {
        let mut a = FlowAssignment::new();
        a.add_rate(FileId(1), d(0), d(1), 2.0);
        a.add_rate(FileId(1), d(1), d(3), 2.0);
        let dec = decompose_flow(&a, &file(2.0, 3), 4);
        assert_eq!(dec.paths.len(), 1);
        assert_eq!(dec.paths[0].nodes, vec![d(0), d(1), d(3)]);
        assert!((dec.paths[0].rate - 2.0).abs() < 1e-12);
        assert_eq!(dec.paths[0].hops(), 2);
        assert_eq!(dec.max_hops(), 2);
        assert!(dec.residual_rate < 1e-12);
    }

    #[test]
    fn split_flow_decomposes_into_two_paths() {
        let mut a = FlowAssignment::new();
        a.add_rate(FileId(1), d(0), d(1), 1.5);
        a.add_rate(FileId(1), d(1), d(3), 1.5);
        a.add_rate(FileId(1), d(0), d(3), 0.5);
        let dec = decompose_flow(&a, &file(2.0, 3), 4);
        assert_eq!(dec.paths.len(), 2);
        assert!((dec.total_rate() - 2.0).abs() < 1e-12);
        assert!(dec.residual_rate < 1e-12);
    }

    #[test]
    fn link_attribution_finds_the_crossing_paths() {
        let mut a = FlowAssignment::new();
        a.add_rate(FileId(1), d(0), d(1), 1.5);
        a.add_rate(FileId(1), d(1), d(3), 1.5);
        a.add_rate(FileId(1), d(0), d(3), 0.5);
        let dec = decompose_flow(&a, &file(2.0, 3), 4);
        // Only the relayed share crosses 0→1; everything crosses into 3.
        assert!((dec.rate_over(d(0), d(1)) - 1.5).abs() < 1e-12);
        assert!((dec.rate_over(d(0), d(3)) - 0.5).abs() < 1e-12);
        assert_eq!(dec.rate_over(d(2), d(3)), 0.0);
        let links = dec.links();
        assert!(links.contains(&(d(0), d(1))) && links.contains(&(d(1), d(3))));
        assert!(!links.contains(&(d(2), d(3))));
        assert!(dec.paths.iter().any(|p| p.crosses(d(0), d(3))));
    }

    #[test]
    fn cycle_reported_as_residual() {
        let mut a = FlowAssignment::new();
        // A direct path plus a junk 1↔2 cycle.
        a.add_rate(FileId(1), d(0), d(3), 2.0);
        a.add_rate(FileId(1), d(1), d(2), 1.0);
        a.add_rate(FileId(1), d(2), d(1), 1.0);
        let dec = decompose_flow(&a, &file(2.0, 3), 4);
        assert_eq!(dec.paths.len(), 1);
        assert!((dec.residual_rate - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_assignment_decomposes_trivially() {
        let dec = decompose_flow(&FlowAssignment::new(), &file(1.0, 2), 4);
        assert!(dec.paths.is_empty());
        assert_eq!(dec.residual_rate, 0.0);
        assert_eq!(dec.max_hops(), 0);
    }

    #[test]
    fn lp_solutions_decompose_cleanly() {
        // End to end: solve the flow LP, decompose, and check the paths
        // carry exactly the desired rate.
        let net = NetworkBuilder::new(4)
            .link(d(0), d(1), 1.0, 2.0)
            .link(d(1), d(3), 1.0, 2.0)
            .link(d(0), d(2), 2.0, 2.0)
            .link(d(2), d(3), 2.0, 2.0)
            .link(d(0), d(3), 9.0, 2.0)
            .build();
        let f = file(3.0, 2); // rate 3 needs two of the three routes
        let a = crate::baseline::unified_flow_lp(&net, &[f], &TrafficLedger::new(4)).unwrap();
        let dec = decompose_flow(&a, &f, 4);
        assert!((dec.total_rate() - 3.0).abs() < 1e-6, "{}", dec.total_rate());
        assert!(dec.residual_rate < 1e-6);
        assert!(dec.paths.len() >= 2);
    }
}
