//! Min-cost flow via successive shortest paths with Johnson potentials.

use crate::graph::{FlowNetwork, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const EPS: f64 = 1e-9;

/// Result of [`min_cost_flow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinCostOutcome {
    /// Flow value actually routed (may be less than requested if the network
    /// saturates first).
    pub flow: f64,
    /// Total cost of the routed flow.
    pub cost: f64,
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on dist.
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Routes up to `target` units of flow from `s` to `t` at minimum cost,
/// using successive shortest augmenting paths with potentials (so negative
/// *residual* costs arising from augmentation are handled; the input edge
/// costs themselves must be non-negative).
///
/// Pass `target = f64::INFINITY` for a min-cost *max*-flow.
///
/// # Panics
///
/// Panics if a node is out of range or an input edge has negative cost.
pub fn min_cost_flow(g: &mut FlowNetwork, s: NodeId, t: NodeId, target: f64) -> MinCostOutcome {
    assert!(s.0 < g.num_nodes() && t.0 < g.num_nodes(), "node out of range");
    assert!(
        g.edges.iter().step_by(2).all(|e| e.cost >= 0.0),
        "input edge costs must be non-negative"
    );
    let n = g.num_nodes();
    let mut flow = 0.0;
    let mut cost = 0.0;
    let mut potential = vec![0.0f64; n];

    while flow + EPS < target {
        // Dijkstra on reduced costs.
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_edge: Vec<Option<usize>> = vec![None; n];
        dist[s.0] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem { dist: 0.0, node: s.0 });
        while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
            if d > dist[u] + EPS {
                continue;
            }
            for &ei in &g.adj[u] {
                if g.res(ei) <= EPS {
                    continue;
                }
                let v = g.edges[ei].to;
                let rc = g.edges[ei].cost + potential[u] - potential[v];
                debug_assert!(rc > -1e-6, "reduced cost must be ~non-negative, got {rc}");
                let nd = d + rc.max(0.0);
                if nd + EPS < dist[v] {
                    dist[v] = nd;
                    prev_edge[v] = Some(ei);
                    heap.push(HeapItem { dist: nd, node: v });
                }
            }
        }
        if !dist[t.0].is_finite() {
            break; // t unreachable: saturated.
        }
        for u in 0..n {
            if dist[u].is_finite() {
                potential[u] += dist[u];
            }
        }
        // Bottleneck along the path.
        let mut bottleneck = target - flow;
        let mut v = t.0;
        while v != s.0 {
            // postcard-analyze: allow(PA102) — Bellman-Ford set prev_edge
            // for every node on the shortest path it just found.
            let ei = prev_edge[v].expect("path must reach s");
            bottleneck = bottleneck.min(g.res(ei));
            v = g.edges[ei ^ 1].to;
        }
        if bottleneck <= EPS {
            break;
        }
        // Apply.
        let mut v = t.0;
        while v != s.0 {
            // postcard-analyze: allow(PA102) — same path walk as above.
            let ei = prev_edge[v].expect("path must reach s");
            g.push(ei, bottleneck);
            cost += bottleneck * g.edges[ei].cost;
            v = g.edges[ei ^ 1].to;
        }
        flow += bottleneck;
    }
    MinCostOutcome { flow, cost }
}

/// Cycle-canceling min-cost flow: first route `target` units by any means
/// (Dinic), then repeatedly cancel negative-cost residual cycles found with
/// Bellman–Ford until none remain.
///
/// Asymptotically slower than [`min_cost_flow`], kept as an independent
/// implementation for cross-validation.
///
/// # Panics
///
/// Panics if a node is out of range.
pub fn cycle_canceling_min_cost(
    g: &mut FlowNetwork,
    s: NodeId,
    t: NodeId,
    target: f64,
) -> MinCostOutcome {
    assert!(s.0 < g.num_nodes() && t.0 < g.num_nodes(), "node out of range");
    // Phase 1: any feasible flow of the requested value, via a super-source
    // whose single edge into `s` caps the flow at `target`. The clone keeps
    // the original edges first, so indices line up when copying flows back.
    let flow = if target.is_finite() {
        let mut capped = FlowNetwork::new(g.num_nodes() + 1);
        capped.edges = g.edges.clone();
        capped.adj[..g.num_nodes()].clone_from_slice(&g.adj);
        let ss = NodeId(g.num_nodes());
        capped.add_edge(ss, s, target, 0.0);
        let flow = crate::maxflow::dinic_max_flow(&mut capped, ss, t);
        for i in 0..g.edges.len() {
            g.edges[i].flow = capped.edges[i].flow;
        }
        flow
    } else {
        crate::maxflow::dinic_max_flow(g, s, t)
    };

    // Phase 2: cancel negative residual cycles.
    let n = g.num_nodes();
    loop {
        // Bellman–Ford from a virtual source connected to every node.
        let mut dist = vec![0.0f64; n];
        let mut prev_edge: Vec<Option<usize>> = vec![None; n];
        let mut updated_node = None;
        for _ in 0..n {
            updated_node = None;
            for (ei, e) in g.edges.iter().enumerate() {
                if e.cap - e.flow > EPS {
                    let u = g.edges[ei ^ 1].to;
                    let v = e.to;
                    if dist[u] + e.cost < dist[v] - 1e-9 {
                        dist[v] = dist[u] + e.cost;
                        prev_edge[v] = Some(ei);
                        updated_node = Some(v);
                    }
                }
            }
            if updated_node.is_none() {
                break;
            }
        }
        let Some(mut v) = updated_node else { break };
        // Walk back n steps to land inside the cycle, then extract it.
        for _ in 0..n {
            // postcard-analyze: allow(PA102) — a node relaxed in pass n has
            // a predecessor chain at least n long.
            v = g.edges[prev_edge[v].expect("updated node has a predecessor") ^ 1].to;
        }
        let start = v;
        let mut cycle = Vec::new();
        let mut bottleneck = f64::INFINITY;
        loop {
            // postcard-analyze: allow(PA102) — every node of the extracted
            // negative cycle was relaxed, so it has a predecessor edge.
            let ei = prev_edge[v].expect("cycle edge");
            cycle.push(ei);
            bottleneck = bottleneck.min(g.res(ei));
            v = g.edges[ei ^ 1].to;
            if v == start {
                break;
            }
        }
        if bottleneck <= EPS {
            break;
        }
        for ei in cycle {
            g.push(ei, bottleneck);
        }
    }
    MinCostOutcome { flow, cost: g.total_cost() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn prefers_cheap_path() {
        // Two parallel paths 0→1→3 (cost 2) and 0→2→3 (cost 10), cap 5 each.
        let mut g = FlowNetwork::new(4);
        g.add_edge(nid(0), nid(1), 5.0, 1.0);
        g.add_edge(nid(1), nid(3), 5.0, 1.0);
        g.add_edge(nid(0), nid(2), 5.0, 5.0);
        g.add_edge(nid(2), nid(3), 5.0, 5.0);
        let out = min_cost_flow(&mut g, nid(0), nid(3), 5.0);
        assert!((out.flow - 5.0).abs() < 1e-9);
        assert!((out.cost - 10.0).abs() < 1e-9);
    }

    #[test]
    fn spills_to_expensive_path_when_needed() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(nid(0), nid(1), 5.0, 1.0);
        g.add_edge(nid(1), nid(3), 5.0, 1.0);
        g.add_edge(nid(0), nid(2), 5.0, 5.0);
        g.add_edge(nid(2), nid(3), 5.0, 5.0);
        let out = min_cost_flow(&mut g, nid(0), nid(3), 8.0);
        assert!((out.flow - 8.0).abs() < 1e-9);
        assert!((out.cost - (10.0 + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn saturation_reported() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(nid(0), nid(1), 3.0, 2.0);
        let out = min_cost_flow(&mut g, nid(0), nid(1), 10.0);
        assert!((out.flow - 3.0).abs() < 1e-9);
        assert!((out.cost - 6.0).abs() < 1e-9);
    }

    #[test]
    fn rerouting_via_residual_edges() {
        // Classic example where the second augmentation must undo part of
        // the first through a residual edge.
        let mut g = FlowNetwork::new(4);
        g.add_edge(nid(0), nid(1), 1.0, 1.0);
        g.add_edge(nid(0), nid(2), 1.0, 3.0);
        g.add_edge(nid(1), nid(2), 1.0, 1.0);
        g.add_edge(nid(1), nid(3), 1.0, 4.0);
        g.add_edge(nid(2), nid(3), 1.0, 1.0);
        let out = min_cost_flow(&mut g, nid(0), nid(3), 2.0);
        assert!((out.flow - 2.0).abs() < 1e-9);
        // With unit capacities the two units decompose as 0→1→3 (cost 5)
        // plus 0→2→3 (cost 4): total 9. The first augmentation takes
        // 0→1→2→3 (cost 3), so the second must undo 1→2 through its
        // residual edge to reach the same optimum.
        assert!((out.cost - 9.0).abs() < 1e-9, "cost = {}", out.cost);
    }

    #[test]
    fn agrees_with_lp_on_random_instances() {
        use postcard_lp::{LinExpr, Model, Sense, Status};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..10 {
            let n = rng.gen_range(4..8usize);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.5) {
                        edges.push((
                            u,
                            v,
                            rng.gen_range(1.0..6.0f64).round(),
                            rng.gen_range(1.0..9.0f64).round(),
                        ));
                    }
                }
            }
            let (s, t) = (0, n - 1);
            // Combinatorial answer (min-cost max-flow).
            let mut g = FlowNetwork::new(n);
            for &(u, v, cap, cost) in &edges {
                g.add_edge(nid(u), nid(v), cap, cost);
            }
            let mc = min_cost_flow(&mut g, nid(s), nid(t), f64::INFINITY);

            // LP answer: maximize flow first (via known max value), then
            // min cost at that flow value.
            let mut m = Model::new(Sense::Minimize);
            let vars: Vec<_> = edges
                .iter()
                .enumerate()
                .map(|(i, &(_, _, cap, _))| m.add_var(format!("e{i}"), 0.0, cap))
                .collect();
            let mut obj = LinExpr::new();
            for (i, &(_, _, _, cost)) in edges.iter().enumerate() {
                obj.add_term(vars[i], cost);
            }
            m.set_objective(obj);
            for node in 0..n {
                if node == s || node == t {
                    continue;
                }
                let mut e = LinExpr::new();
                for (i, &(u, v, _, _)) in edges.iter().enumerate() {
                    if u == node {
                        e.add_term(vars[i], 1.0);
                    }
                    if v == node {
                        e.add_term(vars[i], -1.0);
                    }
                }
                m.eq(e, 0.0);
            }
            let mut src_out = LinExpr::new();
            for (i, &(u, v, _, _)) in edges.iter().enumerate() {
                if u == s {
                    src_out.add_term(vars[i], 1.0);
                }
                if v == s {
                    src_out.add_term(vars[i], -1.0);
                }
            }
            m.eq(src_out, mc.flow);
            let sol = m.solve().unwrap();
            assert_eq!(sol.status(), Status::Optimal, "trial {trial}");
            assert!(
                (sol.objective() - mc.cost).abs() < 1e-5 * (1.0 + mc.cost),
                "trial {trial}: LP {} vs SSP {}",
                sol.objective(),
                mc.cost
            );
        }
    }
}
