//! Dinic's blocking-flow maximum-flow algorithm.

use crate::graph::{FlowNetwork, NodeId};
use std::collections::VecDeque;

const EPS: f64 = 1e-9;

/// Computes the maximum `s → t` flow, leaving the flow decomposition on the
/// network's edges.
///
/// Runs in `O(V²·E)` in general (much faster on unit-ish networks); all
/// capacities are `f64`, with a small epsilon guarding augmentation.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn dinic_max_flow(g: &mut FlowNetwork, s: NodeId, t: NodeId) -> f64 {
    assert!(s.0 < g.num_nodes() && t.0 < g.num_nodes(), "node out of range");
    if s == t {
        return 0.0;
    }
    let n = g.num_nodes();
    let mut total = 0.0;
    loop {
        // BFS level graph.
        let mut level = vec![usize::MAX; n];
        level[s.0] = 0;
        let mut q = VecDeque::from([s.0]);
        while let Some(u) = q.pop_front() {
            for &ei in &g.adj[u] {
                let v = g.edges[ei].to;
                if level[v] == usize::MAX && g.res(ei) > EPS {
                    level[v] = level[u] + 1;
                    q.push_back(v);
                }
            }
        }
        if level[t.0] == usize::MAX {
            return total;
        }
        // DFS blocking flow with iteration pointers.
        let mut iter = vec![0usize; n];
        loop {
            let pushed = dfs(g, &level, &mut iter, s.0, t.0, f64::INFINITY);
            if pushed <= EPS {
                break;
            }
            total += pushed;
        }
    }
}

/// Edmonds–Karp maximum flow: BFS augmenting paths.
///
/// Asymptotically slower than [`dinic_max_flow`] (`O(V·E²)`), kept as an
/// independent implementation for cross-validation — the property tests
/// assert both algorithms agree on random graphs.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn edmonds_karp_max_flow(g: &mut FlowNetwork, s: NodeId, t: NodeId) -> f64 {
    assert!(s.0 < g.num_nodes() && t.0 < g.num_nodes(), "node out of range");
    if s == t {
        return 0.0;
    }
    let n = g.num_nodes();
    let mut total = 0.0;
    loop {
        let mut prev_edge: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[s.0] = true;
        let mut q = VecDeque::from([s.0]);
        'bfs: while let Some(u) = q.pop_front() {
            for &ei in &g.adj[u] {
                let v = g.edges[ei].to;
                if !visited[v] && g.res(ei) > EPS {
                    visited[v] = true;
                    prev_edge[v] = Some(ei);
                    if v == t.0 {
                        break 'bfs;
                    }
                    q.push_back(v);
                }
            }
        }
        if !visited[t.0] {
            return total;
        }
        let mut bottleneck = f64::INFINITY;
        let mut v = t.0;
        while v != s.0 {
            // postcard-analyze: allow(PA102) — BFS set prev_edge for every
            // node on the augmenting path it just found.
            let ei = prev_edge[v].expect("path reaches s");
            bottleneck = bottleneck.min(g.res(ei));
            v = g.edges[ei ^ 1].to;
        }
        let mut v = t.0;
        while v != s.0 {
            // postcard-analyze: allow(PA102) — same path walk as above.
            let ei = prev_edge[v].expect("path reaches s");
            g.push(ei, bottleneck);
            v = g.edges[ei ^ 1].to;
        }
        total += bottleneck;
    }
}

fn dfs(
    g: &mut FlowNetwork,
    level: &[usize],
    iter: &mut [usize],
    u: usize,
    t: usize,
    limit: f64,
) -> f64 {
    if u == t {
        return limit;
    }
    while iter[u] < g.adj[u].len() {
        let ei = g.adj[u][iter[u]];
        let v = g.edges[ei].to;
        if level[v] == level[u] + 1 && g.res(ei) > EPS {
            let pushed = dfs(g, level, iter, v, t, limit.min(g.res(ei)));
            if pushed > EPS {
                g.push(ei, pushed);
                return pushed;
            }
        }
        iter[u] += 1;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    fn nid(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(nid(0), nid(1), 7.5, 0.0);
        assert!((dinic_max_flow(&mut g, nid(0), nid(1)) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn classic_diamond() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(nid(0), nid(1), 3.0, 0.0);
        g.add_edge(nid(0), nid(2), 2.0, 0.0);
        g.add_edge(nid(1), nid(3), 2.0, 0.0);
        g.add_edge(nid(2), nid(3), 3.0, 0.0);
        g.add_edge(nid(1), nid(2), 1.0, 0.0);
        assert!((dinic_max_flow(&mut g, nid(0), nid(3)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(nid(0), nid(1), 5.0, 0.0);
        assert_eq!(dinic_max_flow(&mut g, nid(0), nid(2)), 0.0);
    }

    #[test]
    fn source_equals_sink() {
        let mut g = FlowNetwork::new(1);
        assert_eq!(dinic_max_flow(&mut g, nid(0), nid(0)), 0.0);
    }

    #[test]
    fn respects_bottleneck() {
        // 0 → 1 → 2 with middle bottleneck 1.5.
        let mut g = FlowNetwork::new(3);
        g.add_edge(nid(0), nid(1), 10.0, 0.0);
        g.add_edge(nid(1), nid(2), 1.5, 0.0);
        assert!((dinic_max_flow(&mut g, nid(0), nid(2)) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn flow_conservation_holds() {
        let mut g = FlowNetwork::new(5);
        g.add_edge(nid(0), nid(1), 4.0, 0.0);
        g.add_edge(nid(0), nid(2), 3.0, 0.0);
        g.add_edge(nid(1), nid(3), 2.0, 0.0);
        g.add_edge(nid(2), nid(3), 4.0, 0.0);
        g.add_edge(nid(1), nid(4), 3.0, 0.0);
        g.add_edge(nid(3), nid(4), 5.0, 0.0);
        let f = dinic_max_flow(&mut g, nid(0), nid(4));
        assert!(f > 0.0);
        // Net flow at interior nodes must be zero.
        for node in 1..4 {
            let mut net = 0.0;
            for (i, e) in g.edges.iter().enumerate().step_by(2) {
                let from = g.edges[i ^ 1].to;
                if from == node {
                    net -= e.flow;
                }
                if e.to == node {
                    net += e.flow;
                }
            }
            assert!(net.abs() < 1e-9, "node {node} net {net}");
        }
    }
}
