//! As-Late-As-Possible admission against a residual time-expanded grid.
//!
//! Every slot of the online pipeline normally pays a full LP solve before a
//! single file is admitted, coupling admission latency to solve cost.
//! DCRoute (and DDCCast's admission rung) shows the alternative: keep a
//! *residual* view of the time-expanded capacity — per link, per slot, how
//! much room is left after everything already committed — and admit or
//! reject each arrival by allocating it As-Late-As-Possible before its
//! deadline on cheapest residual paths. No LP model is built; a decision
//! costs `O(links × horizon)` and an optimizer can re-plan periodically in
//! the background.
//!
//! [`AlapScheduler`] implements that policy over [`ResidualGrid`]:
//!
//! * candidate paths come from [`postcard_net::paths::k_cheapest_paths`] (price
//!   order, deterministic);
//! * a chunk placed on an `L`-hop path starting at slot `n` crosses hop `h`
//!   during slot `n + h` — one hop per slot, matching the time-expanded
//!   conservation rule of [`TransferPlan::validate`] — and must finish by
//!   the file's last slot;
//! * finish slots are tried latest-first, paths cheapest-first, so early
//!   capacity stays free for tighter future deadlines;
//! * volume not yet departed waits at the source as explicit holdover
//!   entries, so every admission is a *feasible* [`TransferPlan`] — a
//!   constructive witness that the full LP on the same residual state would
//!   also be feasible.
//!
//! Admission mutates the grid (the placement is reserved); rejection rolls
//! every trial reservation back. The grid is *derived* state — capacity
//! minus the committed ledger — so a crashed-and-resumed service rebuilds
//! it deterministically with [`AlapScheduler::rebase`] instead of
//! snapshotting it.

use postcard_net::paths::{k_cheapest_paths, PricedPath};
use postcard_net::{DcId, Network, TrafficLedger, TransferPlan, TransferRequest};
use std::collections::BTreeMap;

/// Volume below which a remainder counts as fully placed. Well under
/// [`postcard_net::VOLUME_TOL`], so plans that strand this much at the
/// source still validate.
const ALAP_TOL: f64 = 1e-9;

/// How many candidate paths per (src, dst) pair the allocator considers.
const DEFAULT_MAX_PATHS: usize = 4;

/// Residual per-link, per-slot capacity of the time-expanded network.
///
/// `residual(from, to, slot) = capacity(from, to) − reserved(from, to,
/// slot)`. Slots never written are implicitly at full capacity, so the grid
/// extends to any horizon without reallocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResidualGrid {
    /// Link capacity at the last rebase, `(from, to) → GB/slot`.
    capacities: BTreeMap<(usize, usize), f64>,
    /// Reserved volume, `(from, to) → per-slot GB` (index = slot).
    reserved: BTreeMap<(usize, usize), Vec<f64>>,
}

impl ResidualGrid {
    /// An empty grid over `network`'s links with nothing reserved.
    pub fn from_network(network: &Network) -> Self {
        let mut grid = Self::default();
        grid.rebase(network, &TrafficLedger::new(network.num_dcs()));
        grid
    }

    /// Rebuilds the grid from scratch: capacities from `network` (so link
    /// degradations are picked up) and reservations from the committed
    /// volumes in `ledger`. After a rebase the grid exactly mirrors
    /// "capacity minus committed traffic" — the canonical residual state.
    pub fn rebase(&mut self, network: &Network, ledger: &TrafficLedger) {
        self.capacities.clear();
        self.reserved.clear();
        for l in network.links() {
            self.capacities.insert((l.from.0, l.to.0), l.capacity);
            let series = ledger.series(l.from, l.to).to_vec();
            if !series.is_empty() {
                self.reserved.insert((l.from.0, l.to.0), series);
            }
        }
    }

    /// Remaining capacity on `from → to` during `slot` (0 for unknown
    /// links; never negative).
    pub fn residual(&self, from: DcId, to: DcId, slot: u64) -> f64 {
        let Some(&cap) = self.capacities.get(&(from.0, to.0)) else {
            return 0.0;
        };
        let used = self
            .reserved
            .get(&(from.0, to.0))
            .and_then(|s| s.get(slot as usize))
            .copied()
            .unwrap_or(0.0);
        (cap - used).max(0.0)
    }

    /// Reserves `volume` on `from → to` during `slot`.
    fn reserve(&mut self, from: DcId, to: DcId, slot: u64, volume: f64) {
        let series = self.reserved.entry((from.0, to.0)).or_default();
        if series.len() <= slot as usize {
            series.resize(slot as usize + 1, 0.0);
        }
        series[slot as usize] += volume;
    }

    /// Releases a reservation made by [`ResidualGrid::reserve`] (rollback).
    /// Prunes zeroed tails so a fully rolled-back grid compares equal to the
    /// grid before the attempt.
    fn release(&mut self, from: DcId, to: DcId, slot: u64, volume: f64) {
        if let Some(series) = self.reserved.get_mut(&(from.0, to.0)) {
            if let Some(v) = series.get_mut(slot as usize) {
                *v -= volume;
            }
            while series.last().is_some_and(|v| v.abs() < 1e-12) {
                series.pop();
            }
            if series.is_empty() {
                self.reserved.remove(&(from.0, to.0));
            }
        }
    }
}

/// Why [`AlapScheduler::admit`] rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlapRejection {
    /// No path from source to destination exists in the network at all.
    NoPath,
    /// Paths exist, but the residual capacity inside the deadline window
    /// cannot carry the full file size.
    InsufficientResidual,
}

impl std::fmt::Display for AlapRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlapRejection::NoPath => f.write_str("no path from source to destination"),
            AlapRejection::InsufficientResidual => {
                f.write_str("insufficient residual capacity before the deadline")
            }
        }
    }
}

/// One reservation made while placing a file (kept for rollback).
#[derive(Debug, Clone, Copy)]
struct Reservation {
    from: DcId,
    to: DcId,
    slot: u64,
    volume: f64,
}

/// Deadline-guaranteed ALAP admission over a persistent [`ResidualGrid`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlapScheduler {
    grid: ResidualGrid,
    max_paths: usize,
}

impl Default for AlapScheduler {
    /// An empty-grid scheduler; call [`AlapScheduler::rebase`] before the
    /// first admission (an empty grid has no capacity anywhere).
    fn default() -> Self {
        Self { grid: ResidualGrid::default(), max_paths: DEFAULT_MAX_PATHS }
    }
}

impl AlapScheduler {
    /// A scheduler whose grid starts at `network`'s full capacity.
    pub fn new(network: &Network) -> Self {
        Self { grid: ResidualGrid::from_network(network), max_paths: DEFAULT_MAX_PATHS }
    }

    /// Rebuilds the residual grid from the current network capacities and
    /// the committed ledger (see [`ResidualGrid::rebase`]). Call after the
    /// periodic re-optimization pass commits an LP schedule, after link
    /// degradations, and on resume from a snapshot.
    pub fn rebase(&mut self, network: &Network, ledger: &TrafficLedger) {
        self.grid.rebase(network, ledger);
    }

    /// The residual grid (read-only; tests and the runtime's metrics peek
    /// at it).
    pub fn grid(&self) -> &ResidualGrid {
        &self.grid
    }

    /// Admits `file` by ALAP allocation, or rejects it leaving the grid
    /// untouched.
    ///
    /// On success the returned [`TransferPlan`] fully serves the file (one
    /// hop per slot, holdovers at the source) and its transit volumes are
    /// already reserved in the grid — commit the plan to the ledger to keep
    /// the two views consistent.
    ///
    /// # Errors
    ///
    /// [`AlapRejection`] when the file cannot be placed; no reservation
    /// survives a rejection.
    pub fn admit(
        &mut self,
        network: &Network,
        file: &TransferRequest,
    ) -> Result<TransferPlan, AlapRejection> {
        let mut reservations = Vec::new();
        match self.place(network, file, &mut reservations) {
            Ok(plan) => Ok(plan),
            Err(reject) => {
                self.rollback(&reservations);
                Err(reject)
            }
        }
    }

    /// Admits a whole batch all-or-nothing: either every file is placed
    /// (merged plan returned, reservations kept) or the grid is left
    /// exactly as before.
    ///
    /// # Errors
    ///
    /// The first file's [`AlapRejection`] that made the batch fail.
    pub fn admit_batch(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
    ) -> Result<TransferPlan, AlapRejection> {
        let mut reservations = Vec::new();
        let mut merged = TransferPlan::new();
        for file in files {
            match self.place(network, file, &mut reservations) {
                Ok(plan) => merged.merge(&plan),
                Err(reject) => {
                    self.rollback(&reservations);
                    return Err(reject);
                }
            }
        }
        Ok(merged)
    }

    fn rollback(&mut self, reservations: &[Reservation]) {
        for r in reservations {
            self.grid.release(r.from, r.to, r.slot, r.volume);
        }
    }

    /// Places one file, appending every grid reservation to `reservations`
    /// (the caller rolls back on failure).
    fn place(
        &mut self,
        network: &Network,
        file: &TransferRequest,
        reservations: &mut Vec<Reservation>,
    ) -> Result<TransferPlan, AlapRejection> {
        // A request naming a datacenter outside the topology must be an
        // instant rejection, not an out-of-bounds panic inside Dijkstra.
        if file.src.0 >= network.num_dcs() || file.dst.0 >= network.num_dcs() {
            return Err(AlapRejection::NoPath);
        }
        let paths = k_cheapest_paths(network, file.src, file.dst, self.max_paths);
        if paths.is_empty() {
            return Err(AlapRejection::NoPath);
        }
        let (first, last) = (file.first_slot(), file.last_slot());
        let mut remaining = file.size_gb;
        // Chunks as `(start_slot, path index, volume)`.
        let mut chunks: Vec<(u64, usize, f64)> = Vec::new();

        // Latest finish slot first; within a finish slot, cheapest path
        // first. A chunk on an `L`-hop path finishing at `finish` starts at
        // `finish − (L − 1)`, which must stay inside the release window.
        'fill: for finish in (first..=last).rev() {
            for (pi, path) in paths.iter().enumerate() {
                let hops = path.len() as u64;
                if finish < first + (hops - 1) {
                    continue; // path too long to finish here
                }
                let start = finish - (hops - 1);
                let volume = remaining.min(self.bottleneck(path, start));
                if volume <= 0.0 {
                    continue;
                }
                for (h, &(u, v)) in path.hops.iter().enumerate() {
                    let slot = start + h as u64;
                    self.grid.reserve(u, v, slot, volume);
                    reservations.push(Reservation { from: u, to: v, slot, volume });
                }
                chunks.push((start, pi, volume));
                remaining -= volume;
                if remaining <= ALAP_TOL {
                    break 'fill;
                }
            }
        }
        if remaining > ALAP_TOL {
            return Err(AlapRejection::InsufficientResidual);
        }

        // Materialize the plan: transit entries one hop per slot, plus
        // holdovers at the source for volume that departs later.
        let mut plan = TransferPlan::new();
        for &(start, pi, volume) in &chunks {
            for (h, &(u, v)) in paths[pi].hops.iter().enumerate() {
                plan.add(file.id, start + h as u64, u, v, volume);
            }
        }
        for slot in first..=last {
            let waiting: f64 =
                chunks.iter().filter(|&&(start, _, _)| start > slot).map(|&(_, _, v)| v).sum();
            if waiting > 0.0 {
                plan.add(file.id, slot, file.src, file.src, waiting);
            }
        }
        Ok(plan)
    }

    /// The most volume a chunk departing at `start` can carry along `path`
    /// (minimum residual over the hops at their respective slots).
    fn bottleneck(&self, path: &PricedPath, start: u64) -> f64 {
        let mut limit = f64::INFINITY;
        for (h, &(u, v)) in path.hops.iter().enumerate() {
            limit = limit.min(self.grid.residual(u, v, start + h as u64));
        }
        limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{FileId, NetworkBuilder};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    /// The Fig. 1 network: D2 →(10) D3 direct, D2 →(1) D1 →(3) D3 relay.
    fn fig1_net() -> Network {
        NetworkBuilder::new(3)
            .link(d(1), d(2), 10.0, 1000.0)
            .link(d(1), d(0), 1.0, 1000.0)
            .link(d(0), d(2), 3.0, 1000.0)
            .build()
    }

    #[test]
    fn admits_on_the_cheap_relay_and_plans_validly() {
        let net = fig1_net();
        let mut alap = AlapScheduler::new(&net);
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let plan = alap.admit(&net, &f).unwrap();
        let v = plan.validate(&net, &[f], |_, _, _| 0.0);
        assert!(v.is_empty(), "violations: {v:?}");
        // The relay (price 4) beats the direct link (price 10): everything
        // rides D2→D1→D3.
        assert!(plan.link_peak(d(1), d(2)) <= 1e-12, "direct link unused");
        assert!(plan.link_peak(d(1), d(0)) > 0.0);
    }

    #[test]
    fn placement_is_as_late_as_possible() {
        let net = fig1_net();
        let mut alap = AlapScheduler::new(&net);
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let plan = alap.admit(&net, &f).unwrap();
        // A 2-hop chunk finishing at the deadline (slot 2) starts at 1; no
        // transit should happen in slot 0 when capacity allows waiting.
        assert_eq!(plan.link_slot_total(d(1), d(0), 0), 0.0);
        assert!(plan.link_slot_total(d(1), d(0), 1) > 0.0);
        assert!(plan.holdover(FileId(1), d(1), 0) > 0.0, "waits at the source");
    }

    #[test]
    fn grid_reservation_matches_committed_plan() {
        let net = fig1_net();
        let mut alap = AlapScheduler::new(&net);
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let plan = alap.admit(&net, &f).unwrap();
        let mut ledger = TrafficLedger::new(3);
        plan.apply_to_ledger(&mut ledger);
        for l in net.links() {
            for slot in 0..3 {
                let expect = (l.capacity - ledger.volume(l.from, l.to, slot)).max(0.0);
                let got = alap.grid().residual(l.from, l.to, slot);
                assert!(
                    (expect - got).abs() < 1e-9,
                    "residual mismatch on {:?}→{:?} slot {slot}: {expect} vs {got}",
                    l.from,
                    l.to
                );
            }
        }
    }

    #[test]
    fn rejects_oversized_file_and_leaves_grid_untouched() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let mut alap = AlapScheduler::new(&net);
        let before = alap.grid().clone();
        let f = TransferRequest::new(FileId(1), d(0), d(1), 10.0, 1, 0);
        assert_eq!(alap.admit(&net, &f).unwrap_err(), AlapRejection::InsufficientResidual);
        assert_eq!(*alap.grid(), before, "rejection must roll back");
    }

    #[test]
    fn rejects_unreachable_destination() {
        let net = NetworkBuilder::new(3).link(d(0), d(1), 1.0, 10.0).build();
        let mut alap = AlapScheduler::new(&net);
        let f = TransferRequest::new(FileId(1), d(0), d(2), 1.0, 2, 0);
        assert_eq!(alap.admit(&net, &f).unwrap_err(), AlapRejection::NoPath);
    }

    #[test]
    fn rejects_out_of_range_datacenters_without_panicking() {
        let net = fig1_net();
        let mut alap = AlapScheduler::new(&net);
        let bad_src = TransferRequest::new(FileId(1), d(7), d(0), 1.0, 2, 0);
        assert_eq!(alap.admit(&net, &bad_src).unwrap_err(), AlapRejection::NoPath);
        let bad_dst = TransferRequest::new(FileId(2), d(0), d(9), 1.0, 2, 0);
        assert_eq!(alap.admit(&net, &bad_dst).unwrap_err(), AlapRejection::NoPath);
    }

    #[test]
    fn spreads_across_slots_when_one_is_not_enough() {
        // Capacity 2/slot, 6 GB over 3 slots: all three slots must carry.
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let mut alap = AlapScheduler::new(&net);
        let f = TransferRequest::new(FileId(1), d(0), d(1), 6.0, 3, 0);
        let plan = alap.admit(&net, &f).unwrap();
        assert!(plan.is_valid(&net, &[f], |_, _, _| 0.0));
        for slot in 0..3 {
            assert!((plan.link_slot_total(d(0), d(1), slot) - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn second_admission_sees_the_first_ones_reservations() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let mut alap = AlapScheduler::new(&net);
        let a = TransferRequest::new(FileId(1), d(0), d(1), 4.0, 2, 0);
        let b = TransferRequest::new(FileId(2), d(0), d(1), 1.0, 2, 0);
        assert!(alap.admit(&net, &a).is_ok(), "4 GB fills both slots");
        assert_eq!(alap.admit(&net, &b).unwrap_err(), AlapRejection::InsufficientResidual);
    }

    #[test]
    fn batch_admission_is_all_or_nothing() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let mut alap = AlapScheduler::new(&net);
        let before = alap.grid().clone();
        let a = TransferRequest::new(FileId(1), d(0), d(1), 3.0, 2, 0);
        let b = TransferRequest::new(FileId(2), d(0), d(1), 3.0, 2, 0);
        assert!(alap.admit_batch(&net, &[a, b]).is_err(), "6 GB > 4 GB window");
        assert_eq!(*alap.grid(), before);
        let ok = alap.admit_batch(&net, &[a]).unwrap();
        assert!(ok.is_valid(&net, &[a], |_, _, _| 0.0));
    }

    #[test]
    fn rebase_restores_capacity_freed_by_an_external_replan() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let mut alap = AlapScheduler::new(&net);
        let a = TransferRequest::new(FileId(1), d(0), d(1), 4.0, 2, 0);
        alap.admit(&net, &a).unwrap();
        // An external optimizer re-planned everything away: the ledger is
        // empty, so a rebase must free the grid again.
        alap.rebase(&net, &TrafficLedger::new(2));
        let b = TransferRequest::new(FileId(2), d(0), d(1), 4.0, 2, 0);
        assert!(alap.admit(&net, &b).is_ok());
    }

    #[test]
    fn rebase_picks_up_degraded_capacity() {
        let mut net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 10.0).build();
        let mut alap = AlapScheduler::new(&net);
        net.set_capacity(d(0), d(1), 1.0);
        alap.rebase(&net, &TrafficLedger::new(2));
        let f = TransferRequest::new(FileId(1), d(0), d(1), 5.0, 2, 0);
        assert_eq!(alap.admit(&net, &f).unwrap_err(), AlapRejection::InsufficientResidual);
    }

    #[test]
    fn deadline_one_slot_uses_only_the_direct_link() {
        let net = fig1_net();
        let mut alap = AlapScheduler::new(&net);
        let f = TransferRequest::new(FileId(1), d(1), d(2), 5.0, 1, 2);
        let plan = alap.admit(&net, &f).unwrap();
        assert!(plan.is_valid(&net, &[f], |_, _, _| 0.0));
        // Only the 1-hop path fits a 1-slot window.
        assert!((plan.link_slot_total(d(1), d(2), 2) - 5.0).abs() < 1e-9);
        assert_eq!(plan.link_slot_total(d(1), d(0), 2), 0.0);
    }

    #[test]
    fn release_slot_offsets_are_respected() {
        let net = fig1_net();
        let mut alap = AlapScheduler::new(&net);
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 2, 5);
        let plan = alap.admit(&net, &f).unwrap();
        assert!(plan.is_valid(&net, &[f], |_, _, _| 0.0));
        for e in plan.iter() {
            assert!((5..=6).contains(&e.slot), "entry outside window: {e:?}");
        }
    }
}
