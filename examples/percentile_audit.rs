//! Audit a simulated charging period under different percentile schemes.
//!
//! The paper's optimizer targets the 100-th percentile (the peak sets the
//! bill), but real ISPs predominantly charge the 95-th percentile
//! (Sec. II-A). This example runs one online simulation and re-prices the
//! resulting ledger under several schemes, showing how much of the bill is
//! peak-driven — the headroom a q-aware optimizer (future work in the
//! paper) could exploit.
//!
//! ```sh
//! cargo run --release --example percentile_audit
//! ```

use postcard::core::{OnlineController, PostcardScheduler};
use postcard::net::PercentileScheme;
use postcard::sim::{Scenario, Trace};

fn main() {
    let scenario = Scenario::fig6().tiny();
    let network = scenario.network(3);
    let mut workload = scenario.workload(3);
    let trace = Trace::generate(&mut workload, scenario.num_slots);

    let mut ctl = OnlineController::new(network.clone(), PostcardScheduler::new());
    for slot in 0..scenario.num_slots {
        ctl.step(slot, &trace.batch(slot)).expect("simulation step");
    }
    let ledger = ctl.ledger();
    let period = ledger.horizon() as usize;

    println!(
        "simulated {} slots, {} files, {:.0} GB carried",
        scenario.num_slots,
        trace.len(),
        ctl.admission_volumes().0
    );
    println!();
    println!("{:>12}  {:>14}  {:>16}", "scheme", "bill per slot", "vs 100th pctile");
    let p100 = ledger.cost_per_slot_with(&network, PercentileScheme::MAX, period);
    for q in [100.0, 99.0, 95.0, 90.0, 50.0] {
        let bill = ledger.cost_per_slot_with(&network, PercentileScheme::new(q), period);
        println!(
            "{:>11.0}%  {:>14.2}  {:>15.1}%",
            q,
            bill,
            if p100 > 0.0 { 100.0 * bill / p100 } else { 0.0 }
        );
    }
    println!();
    println!(
        "every link's charged rank in a {period}-slot period under p95: slot #{}",
        PercentileScheme::P95.charged_rank(period)
    );
    println!(
        "(the paper's example: a one-year period of 5-minute slots charges sorted slot #{})",
        PercentileScheme::P95.charged_rank(365 * 24 * 60 / 5)
    );
}
