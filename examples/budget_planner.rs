//! Budget-constrained transfer planning (paper Sec. VI, second extension).
//!
//! During peak hours more transfer requests arrive than the traffic budget
//! can carry. This example sweeps the per-slot budget and shows how much of
//! the waiting volume each budget level can deliver — the provider's
//! price/service trade-off curve.
//!
//! ```sh
//! cargo run --release --example budget_planner
//! ```

use postcard::core::extensions::solve_budget_constrained;
use postcard::net::{DcId, FileId, Network, TrafficLedger, TransferRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2012);
    let num_dcs = 5;
    let network = Network::complete_with_prices(num_dcs, 40.0, |_, _| rng.gen_range(1.0..=10.0));

    // A peak-hour queue: 8 files wanting out within a few slots.
    let files: Vec<TransferRequest> = (0..8)
        .map(|k| {
            let src = rng.gen_range(0..num_dcs);
            let mut dst = rng.gen_range(0..num_dcs);
            while dst == src {
                dst = rng.gen_range(0..num_dcs);
            }
            TransferRequest::new(
                FileId(k),
                DcId(src),
                DcId(dst),
                rng.gen_range(20.0..=80.0),
                rng.gen_range(2..=4),
                0,
            )
        })
        .collect();
    let total: f64 = files.iter().map(|f| f.size_gb).sum();
    let ledger = TrafficLedger::new(num_dcs);

    println!("queued volume: {total:.0} GB across {} files", files.len());
    println!();
    println!(
        "{:>12}  {:>14}  {:>10}  {:>12}",
        "budget/slot", "delivered GB", "served %", "bill/slot"
    );
    for budget in [0.0, 50.0, 100.0, 150.0, 200.0, 300.0, 500.0, 1000.0] {
        let sol = solve_budget_constrained(&network, &files, &ledger, budget)
            .expect("budget ≥ 0 on an empty ledger is feasible");
        // Sanity: the plan serves the delivered sizes feasibly.
        let served = sol.delivered_requests(&files);
        assert!(sol.plan.is_valid(&network, &served, |_, _, _| 0.0));
        assert!(sol.cost_per_slot <= budget + 1e-6);
        println!(
            "{:>12.0}  {:>14.1}  {:>9.1}%  {:>12.2}",
            budget,
            sol.total_delivered,
            100.0 * sol.total_delivered / total,
            sol.cost_per_slot
        );
    }
    println!();
    println!(
        "the curve is concave: the first dollars buy the cheapest paths, later \
         dollars push traffic onto expensive links"
    );
}
