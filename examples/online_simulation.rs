//! The paper's evaluation (Sec. VII), runnable from the command line.
//!
//! Reproduces any of the four figure settings, comparing Postcard against
//! the storage-free flow-based approach (plus optional extra baselines):
//!
//! ```sh
//! # Scaled-down default (laptop-friendly):
//! cargo run --release --example online_simulation -- --setting fig6
//!
//! # All four figures:
//! cargo run --release --example online_simulation -- --setting all
//!
//! # The paper's full 20-datacenter scale (slow!):
//! cargo run --release --example online_simulation -- --setting fig6 --paper-scale
//!
//! # Add more baselines and change seeds/runs:
//! cargo run --release --example online_simulation -- --setting fig4 --all-approaches --seed 7
//! ```

use postcard::sim::{report, run_scenario, Approach, Scenario};
use std::process::ExitCode;

struct Args {
    settings: Vec<Scenario>,
    paper_scale: bool,
    all_approaches: bool,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut settings = vec![Scenario::fig6()];
    let mut paper_scale = false;
    let mut all_approaches = false;
    let mut seed = 1u64;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--setting" => {
                i += 1;
                let v = argv.get(i).ok_or("--setting needs a value")?;
                settings = match v.as_str() {
                    "fig4" => vec![Scenario::fig4()],
                    "fig5" => vec![Scenario::fig5()],
                    "fig6" => vec![Scenario::fig6()],
                    "fig7" => vec![Scenario::fig7()],
                    "all" => Scenario::all_figures(),
                    other => return Err(format!("unknown setting `{other}`")),
                };
            }
            "--paper-scale" => paper_scale = true,
            "--all-approaches" => all_approaches = true,
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed value".to_string())?;
            }
            "--help" | "-h" => {
                return Err("usage: online_simulation [--setting fig4|fig5|fig6|fig7|all] \
                            [--paper-scale] [--all-approaches] [--seed N]"
                    .into())
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
        i += 1;
    }
    Ok(Args { settings, paper_scale, all_approaches, seed })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let approaches = if args.all_approaches {
        vec![
            Approach::Postcard,
            Approach::FlowLp,
            Approach::FlowTwoPhase,
            Approach::FlowGreedy,
            Approach::Direct,
        ]
    } else {
        Approach::paper_pair()
    };

    for base in &args.settings {
        let scenario = if args.paper_scale { base.clone() } else { base.scaled_down() };
        eprintln!(
            "running {} ({} datacenters, {} slots, {} runs)...",
            scenario.name, scenario.num_dcs, scenario.num_slots, scenario.num_runs
        );
        match run_scenario(&scenario, &approaches, args.seed) {
            Ok(summaries) => {
                println!("{}", report::render_table(&scenario, &summaries));
                println!("{}", report::render_verdict(&summaries));
                println!();
            }
            Err(e) => {
                eprintln!("{}: failed: {e}", scenario.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
