//! Record a workload trace to CSV, replay it through two approaches, and
//! compare bills — the paired-comparison methodology of the paper's
//! evaluation, on a trace you can inspect and edit.
//!
//! ```sh
//! cargo run --release --example trace_replay            # generate + replay
//! cargo run --release --example trace_replay -- my.csv  # replay your own
//! ```

use postcard::sim::{run_trace, Approach, Scenario, Trace};
use std::process::ExitCode;

fn main() -> ExitCode {
    let scenario = Scenario::fig6().tiny();
    let network = scenario.network(11);

    let trace = match std::env::args().nth(1) {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Trace::from_csv(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let mut workload = scenario.workload(11);
            let trace = Trace::generate(&mut workload, scenario.num_slots);
            let path = std::env::temp_dir().join("postcard_trace.csv");
            if std::fs::write(&path, trace.to_csv()).is_ok() {
                println!("trace written to {} ({} files)", path.display(), trace.len());
            }
            trace
        }
    };

    println!(
        "replaying {} files / {:.0} GB over {} slots on a {}-datacenter network",
        trace.len(),
        trace.total_volume(),
        trace.num_slots(),
        network.num_dcs()
    );
    println!();
    println!("{:<12}{:>16}{:>14}{:>10}", "approach", "avg cost/slot", "final", "rejected");
    for approach in [Approach::Postcard, Approach::FlowLp, Approach::Direct] {
        match run_trace(&network, &trace, trace.num_slots(), approach, 0) {
            Ok(r) => println!(
                "{:<12}{:>16.2}{:>14.2}{:>10}",
                approach.name(),
                r.avg_cost_per_slot,
                r.final_cost_per_slot,
                r.rejected
            ),
            Err(e) => println!("{:<12}  failed: {e}", approach.name()),
        }
    }
    ExitCode::SUCCESS
}
