//! Quickstart: schedule one delay-tolerant transfer with Postcard and see
//! why store-and-forward saves money.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use postcard::core::{solve_postcard, PostcardError};
use postcard::net::{DcId, FileId, NetworkBuilder, TrafficLedger, TransferRequest};

fn main() -> Result<(), PostcardError> {
    // Three datacenters. The direct link D1 → D2 is expensive ($10/GB);
    // the relay through D0 is cheap ($1 + $3 per GB).
    let network = NetworkBuilder::new(3)
        .name(DcId(0), "relay")
        .name(DcId(1), "source")
        .name(DcId(2), "sink")
        .link(DcId(1), DcId(2), 10.0, 1000.0)
        .link(DcId(1), DcId(0), 1.0, 1000.0)
        .link(DcId(0), DcId(2), 3.0, 1000.0)
        .build();

    // One 6-GB file, due within three 5-minute slots (the paper's Fig. 1).
    let file = TransferRequest::new(FileId(1), DcId(1), DcId(2), 6.0, 3, 0);

    // Nothing has been transmitted yet this charging period.
    let ledger = TrafficLedger::new(network.num_dcs());

    let solution = solve_postcard(&network, &[file], &ledger)?;

    println!("optimal bill per slot: ${:.2}", solution.cost_per_slot);
    println!("store-and-forward holdover used: {:.1} GB", solution.plan.total_holdover());
    println!();
    println!("slot  from      to        GB");
    for entry in solution.plan.iter() {
        println!(
            "{:>4}  {:<8}  {:<8}  {:>5.1}{}",
            entry.slot,
            network.dc_name(entry.from),
            network.dc_name(entry.to),
            entry.volume,
            if entry.is_holdover() { "  (stored)" } else { "" }
        );
    }

    // The delivery curve: cumulative GB at the sink by the end of each slot.
    println!();
    print!("delivery curve (GB at sink):");
    for (slot, arrived) in solution.plan.delivery_curve(&file, file.dst) {
        print!("  slot {slot}: {arrived:.1}");
    }
    println!();

    // The plan is independently checkable against every paper constraint.
    let violations = solution.plan.validate(&network, &[file], |_, _, _| 0.0);
    assert!(violations.is_empty(), "optimizer must produce feasible plans");
    println!();
    println!("plan validated: capacity, conservation, and deadline all hold");
    Ok(())
}
