//! The paper's two worked examples, reproduced end to end.
//!
//! * **Fig. 1** — a single 6-MB file, direct vs routed-and-scheduled:
//!   cost 20 vs 12 per slot.
//! * **Fig. 3** — two files contending for a cheap link: Postcard 32.67,
//!   flow-based 50, no strategy 52 per slot (prices reconstructed so that
//!   all three of the paper's numbers emerge; see `tests/fig3_example.rs`).
//!
//! ```sh
//! cargo run --release --example motivating_example
//! ```

use postcard::core::{solve_postcard, DirectScheduler, OnlineController, PostcardScheduler};
use postcard::flow::greedy_cheapest_path;
use postcard::net::{DcId, FileId, Network, NetworkBuilder, TrafficLedger, TransferRequest};

fn fig1() {
    println!("=== Fig. 1: routing + scheduling on a single file ===");
    let network = NetworkBuilder::new(3)
        .link(DcId(1), DcId(2), 10.0, 1000.0) // D2 → D3, $10/GB
        .link(DcId(1), DcId(0), 1.0, 1000.0) // D2 → D1, $1/GB
        .link(DcId(0), DcId(2), 3.0, 1000.0) // D1 → D3, $3/GB
        .build();
    let file = TransferRequest::new(FileId(1), DcId(1), DcId(2), 6.0, 3, 0);

    let mut direct = OnlineController::new(network.clone(), DirectScheduler);
    let d = direct.step(0, &[file]).expect("direct path exists");
    println!("direct (Fig. 1a):            cost/slot = {:>6.2}", d.cost_per_slot);

    let mut postcard = OnlineController::new(network.clone(), PostcardScheduler::new());
    let p = postcard.step(0, &[file]).expect("feasible");
    println!("postcard (Fig. 1b):          cost/slot = {:>6.2}", p.cost_per_slot);
    assert!((d.cost_per_slot - 20.0).abs() < 1e-6);
    assert!((p.cost_per_slot - 12.0).abs() < 1e-4);
}

/// Prices reconstructed for Fig. 3 (see DESIGN.md): a21=1, a14=6, a23=4,
/// a34=6, a24=11; all unused links priced at 20; capacity 5 everywhere.
fn fig3_network() -> Network {
    let n = 4;
    Network::complete_with_prices(n, 5.0, |from, to| match (from.0, to.0) {
        (1, 0) => 1.0,  // D2 → D1
        (0, 3) => 6.0,  // D1 → D4
        (1, 2) => 4.0,  // D2 → D3
        (2, 3) => 6.0,  // D3 → D4
        (1, 3) => 11.0, // D2 → D4
        _ => 20.0,
    })
}

fn fig3() {
    println!();
    println!("=== Fig. 3: two files, one cheap link, three strategies ===");
    // File 1: D2 → D4, 8 GB, deadline 4 slots; File 2: D1 → D4, 10 GB,
    // deadline 2 slots; both released at t = 3.
    let file1 = TransferRequest::new(FileId(1), DcId(1), DcId(3), 8.0, 4, 3);
    let file2 = TransferRequest::new(FileId(2), DcId(0), DcId(3), 10.0, 2, 3);
    let network = fig3_network();

    // Postcard: store-and-forward time-shifts File 1 onto the paid link.
    let ledger = TrafficLedger::new(4);
    let sol = solve_postcard(&network, &[file1, file2], &ledger).expect("feasible");
    println!("postcard:                    cost/slot = {:>6.2}  (paper: 32.67)", sol.cost_per_slot);

    // Flow-based: urgent File 2 saturates the cheap link for its whole
    // window; File 1 falls back to the cheapest *available* path.
    let greedy = greedy_cheapest_path(&network, &[file2, file1], &ledger);
    assert!(greedy.unrouted.is_empty());
    let mut flow_ledger = TrafficLedger::new(4);
    greedy.assignment.apply_to_ledger(&[file2, file1], &mut flow_ledger);
    println!(
        "flow-based (greedy):         cost/slot = {:>6.2}  (paper: 50)",
        flow_ledger.cost_per_slot(&network)
    );

    // No strategy: both files trickle over their direct links.
    let mut direct = OnlineController::new(network.clone(), DirectScheduler);
    let d = direct.step(3, &[file1, file2]).expect("direct links exist");
    println!("no strategy (direct):        cost/slot = {:>6.2}  (paper: 52)", d.cost_per_slot);

    println!();
    println!(
        "postcard holdover: {:.1} GB stored across slot boundaries",
        sol.plan.total_holdover()
    );
}

fn main() {
    fig1();
    fig3();
}
