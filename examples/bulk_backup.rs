//! Bulk backups over leftover, already-paid bandwidth (paper Sec. VI,
//! problem 11 — the NetStitcher scenario).
//!
//! A provider's interactive traffic peaks during the day and idles at
//! night. Under percentile charging the *peak* sets the bill, so the night
//! valley under the peak is free. This example schedules a multi-terabyte
//! backup chain across time zones using only that free capacity, with
//! intermediate datacenters storing data until their next hop's valley
//! opens.
//!
//! ```sh
//! cargo run --release --example bulk_backup
//! ```

use postcard::core::extensions::{solve_bulk_max_transfer, BulkCapacityMode};
use postcard::net::{DcId, FileId, NetworkBuilder, TrafficLedger, TransferRequest};

fn main() {
    // A west→east chain: US-West → US-East → EU, 12 slots of horizon.
    // (One "slot" here stands for a coarser scheduling epoch.)
    let network = NetworkBuilder::new(3)
        .name(DcId(0), "us-west")
        .name(DcId(1), "us-east")
        .name(DcId(2), "eu")
        .link(DcId(0), DcId(1), 4.0, 50.0)
        .link(DcId(1), DcId(2), 7.0, 50.0)
        .build();

    // Interactive traffic: each hop has already peaked at 40 GB/slot this
    // charging period, and each hop is *saturated at its paid peak* during
    // its own day, idle at night. The days are phase-shifted by time zone:
    // us-west→us-east is busy in slots 6–11, us-east→eu in slots 0–5 — the
    // two free windows never overlap.
    let mut ledger = TrafficLedger::new(3);
    ledger.record(DcId(0), DcId(1), 100, 40.0); // historical peak, sunk cost
    ledger.record(DcId(1), DcId(2), 100, 40.0);
    for slot in 6..12 {
        ledger.record(DcId(0), DcId(1), slot, 40.0);
    }
    for slot in 0..6 {
        ledger.record(DcId(1), DcId(2), slot, 40.0);
    }
    let bill_before = ledger.cost_per_slot(&network);

    // The backup: 300 GB from us-west to eu, due within 12 slots.
    let backup = TransferRequest::new(FileId(1), DcId(0), DcId(2), 300.0, 12, 0);

    let sol =
        solve_bulk_max_transfer(&network, &[backup], &ledger, BulkCapacityMode::PaidLeftoverOnly)
            .expect("bulk LP solves");

    println!("backup size requested: {:.0} GB", backup.size_gb);
    println!("delivered for free:    {:.0} GB", sol.total_delivered);
    println!("stored at relays:      {:.0} GB·slots", sol.plan.total_holdover());

    // Committing the plan must not move the bill at all.
    let mut after = ledger.clone();
    sol.plan.apply_to_ledger(&mut after);
    let bill_after = after.cost_per_slot(&network);
    println!("bill/slot before: ${bill_before:.2}   after: ${bill_after:.2}");
    assert!((bill_after - bill_before).abs() < 1e-9, "leftover-only transfers are free");

    // Show the night-valley usage per hop.
    for (from, to) in [(DcId(0), DcId(1)), (DcId(1), DcId(2))] {
        let series: Vec<String> = (0..12)
            .map(|s| format!("{:>3.0}", sol.plan.link_slot_total(from, to, s).max(0.0)))
            .collect();
        println!(
            "{} → {}: backup GB per slot: [{}]",
            network.dc_name(from),
            network.dc_name(to),
            series.join(" ")
        );
    }

    // Contrast: a storage-free transfer needs both hops free in the *same*
    // slot — and the phase-shifted days never align here.
    let simultaneous_free_slots = (0..12)
        .filter(|&s| {
            let h1 = 40.0 - ledger.volume(DcId(0), DcId(1), s);
            let h2 = 40.0 - ledger.volume(DcId(1), DcId(2), s);
            h1 > 0.0 && h2 > 0.0
        })
        .count();
    println!(
        "slots where both hops are simultaneously free: {simultaneous_free_slots} of 12 \
         — without storage at us-east, nothing could move for free"
    );
    assert_eq!(simultaneous_free_slots, 0);
    assert!(sol.total_delivered > 0.0);
}
