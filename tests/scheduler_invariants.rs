//! Cross-scheduler invariants on randomized workloads.
//!
//! Every scheduler must produce decisions that pass the independent
//! validators in `postcard-net` / `postcard-flow`, and the optimizers must
//! respect their dominance relations: Postcard's feasible set contains
//! every direct plan, and the unified flow LP optimizes over a superset of
//! every other flow baseline's solutions.

use postcard::core::{
    solve_postcard, Decision, DirectScheduler, FlowLpScheduler, GreedyScheduler, PostcardScheduler,
    Scheduler, TwoPhaseScheduler,
};
use postcard::net::{DcId, FileId, Network, TrafficLedger, TransferRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(
    seed: u64,
    num_dcs: usize,
    num_files: usize,
    capacity: f64,
) -> (Network, Vec<TransferRequest>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let network =
        Network::complete_with_prices(num_dcs, capacity, |_, _| rng.gen_range(1.0..=10.0));
    let files = (0..num_files)
        .map(|k| {
            let src = rng.gen_range(0..num_dcs);
            let mut dst = rng.gen_range(0..num_dcs);
            while dst == src {
                dst = rng.gen_range(0..num_dcs);
            }
            TransferRequest::new(
                FileId(k as u64),
                DcId(src),
                DcId(dst),
                rng.gen_range(10.0..=100.0),
                rng.gen_range(1..=4),
                0,
            )
        })
        .collect();
    (network, files)
}

/// Commits a decision to a fresh ledger and returns the resulting bill.
fn bill_of(network: &Network, files: &[TransferRequest], decision: &Decision) -> f64 {
    let mut ledger = TrafficLedger::new(network.num_dcs());
    match decision {
        Decision::Plan(p) => {
            assert!(p.is_valid(network, files, |_, _, _| 0.0), "invalid plan from a scheduler");
            p.apply_to_ledger(&mut ledger);
        }
        Decision::Rates(r) => {
            assert!(r.is_valid(network, files, |_, _, _| 0.0), "invalid rates from a scheduler");
            r.apply_to_ledger(files, &mut ledger);
        }
    }
    ledger.cost_per_slot(network)
}

#[test]
fn every_scheduler_produces_validated_decisions() {
    for seed in 0..8u64 {
        let (network, files) = random_instance(seed, 5, 4, 150.0);
        let ledger = TrafficLedger::new(5);
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(PostcardScheduler::new()),
            Box::new(FlowLpScheduler::new()),
            Box::new(TwoPhaseScheduler),
            Box::new(GreedyScheduler),
            Box::new(DirectScheduler),
        ];
        for s in schedulers.iter_mut() {
            match s.schedule(&network, &files, &ledger) {
                Ok(decision) => {
                    let bill = bill_of(&network, &files, &decision);
                    assert!(bill.is_finite() && bill >= 0.0, "{}: bill {bill}", s.name());
                }
                Err(e) => panic!("{} failed on ample capacity: {e}", s.name()),
            }
        }
    }
}

#[test]
fn postcard_never_costs_more_than_direct() {
    for seed in 100..110u64 {
        let (network, files) = random_instance(seed, 5, 3, 200.0);
        let ledger = TrafficLedger::new(5);
        let postcard = solve_postcard(&network, &files, &ledger).unwrap().cost_per_slot;
        let direct = DirectScheduler
            .schedule(&network, &files, &ledger)
            .map(|d| bill_of(&network, &files, &d))
            .unwrap();
        assert!(postcard <= direct + 1e-5, "seed {seed}: postcard {postcard} > direct {direct}");
    }
}

#[test]
fn unified_flow_lp_dominates_other_flow_baselines() {
    for seed in 200..208u64 {
        let (network, files) = random_instance(seed, 5, 3, 200.0);
        let ledger = TrafficLedger::new(5);
        let mut flow_lp = FlowLpScheduler::new();
        let lp_bill = flow_lp
            .schedule(&network, &files, &ledger)
            .map(|d| bill_of(&network, &files, &d))
            .unwrap();
        for other in [Box::new(TwoPhaseScheduler) as Box<dyn Scheduler>, Box::new(GreedyScheduler)]
        {
            let mut other = other;
            if let Ok(d) = other.schedule(&network, &files, &ledger) {
                let bill = bill_of(&network, &files, &d);
                assert!(
                    lp_bill <= bill + 1e-4,
                    "seed {seed}: flow-lp {lp_bill} > {} {bill}",
                    other.name()
                );
            }
        }
    }
}

#[test]
fn postcard_cost_is_monotone_in_deadline() {
    // Relaxing every deadline can only help (the feasible set grows).
    for seed in 300..306u64 {
        let (network, files) = random_instance(seed, 4, 3, 100.0);
        let ledger = TrafficLedger::new(4);
        let tight = solve_postcard(&network, &files, &ledger).unwrap().cost_per_slot;
        let relaxed_files: Vec<TransferRequest> = files
            .iter()
            .map(|f| {
                TransferRequest::new(
                    f.id,
                    f.src,
                    f.dst,
                    f.size_gb,
                    f.deadline_slots + 2,
                    f.release_slot,
                )
            })
            .collect();
        let relaxed = solve_postcard(&network, &relaxed_files, &ledger).unwrap().cost_per_slot;
        assert!(relaxed <= tight + 1e-5, "seed {seed}: relaxed {relaxed} > tight {tight}");
    }
}

#[test]
fn postcard_benefits_from_prior_paid_volume() {
    // Pre-paying peaks can only lower the *additional* bill: the total bill
    // with a prior peak P on every link is at most (bill without prior) +
    // (cost of the floors).
    let mut checked = 0usize;
    for seed in 400..420u64 {
        let (network, files) = random_instance(seed, 4, 3, 100.0);
        let empty = TrafficLedger::new(4);
        // Random draws can be genuinely infeasible (a file larger than its
        // deadline's capacity envelope); the invariant only concerns
        // solvable instances, so skip the rest.
        let Ok(sol) = solve_postcard(&network, &files, &empty) else {
            continue;
        };
        checked += 1;
        let fresh = sol.cost_per_slot;
        let mut paid = TrafficLedger::new(4);
        for l in network.links() {
            paid.record(l.from, l.to, 1000, 20.0);
        }
        let floors: f64 = network.links().map(|l| l.price * 20.0).sum();
        let with_prior = solve_postcard(&network, &files, &paid).unwrap().cost_per_slot;
        assert!(
            with_prior <= fresh + floors + 1e-5,
            "seed {seed}: {with_prior} > {fresh} + {floors}"
        );
        // And the prior volume is genuinely useful: the increment over the
        // floor is no larger than the fresh bill.
        assert!(with_prior - floors <= fresh + 1e-5);
    }
    assert!(checked >= 3, "too few feasible instances: {checked}");
}

#[test]
fn plans_respect_residual_capacity_left_by_earlier_batches() {
    // Schedule two consecutive batches; the second must fit around the
    // first's committed (future) traffic. Random draws can be infeasible
    // (alone or after batch 0's commitments), so scan a seed window and
    // require a minimum number of solvable pairs.
    let mut checked = 0usize;
    for seed in 0..40u64 {
        let (network, batch0) = random_instance(seed, 4, 3, 60.0);
        let mut ledger = TrafficLedger::new(4);
        let Ok(sol0) = solve_postcard(&network, &batch0, &ledger) else {
            continue;
        };
        sol0.plan.apply_to_ledger(&mut ledger);
        let batch1: Vec<TransferRequest> = random_instance(seed + 1000, 4, 3, 60.0)
            .1
            .into_iter()
            .map(|f| {
                TransferRequest::new(
                    FileId(f.id.0 + 100),
                    f.src,
                    f.dst,
                    f.size_gb,
                    f.deadline_slots,
                    1,
                )
            })
            .collect();
        let Ok(sol1) = solve_postcard(&network, &batch1, &ledger) else {
            continue;
        };
        // Validate against capacity minus batch-0 usage.
        let violations = sol1.plan.validate(&network, &batch1, |i, j, s| ledger.volume(i, j, s));
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        checked += 1;
    }
    assert!(checked >= 3, "too few feasible batch pairs: {checked}");
}
