//! Acceptance tests of the sharded multi-tenant runtime.
//!
//! Three headline properties of `postcard serve --shards N`:
//!
//! 1. **Equivalence** — on tenant-disjoint (block-diagonal) workloads the
//!    sharded runtime admits exactly the same requests as the unsharded
//!    one and reconciliation finds zero conflicts, so the percentile bill
//!    matches the unsharded objective.
//! 2. **Safety** — when shards *do* contend for a shared link, the
//!    reconciler's fixed-order validation plus serial re-solve never lets
//!    the merged ledger exceed any link capacity in any slot.
//! 3. **Crash-safety** — killing a 4-shard run mid-stream and resuming
//!    from the snapshot manifest (v6: manifest + per-shard files)
//!    reproduces the uninterrupted run bit for bit.
//!
//! Determinism of the parallel solve (same instance → same bits,
//! regardless of worker scheduling) is exercised both directly and as a
//! byproduct of the bit-exact comparisons in the other tests.

use postcard::net::{DcId, FileId, NetworkBuilder, TransferRequest};
use postcard::runtime::{
    ArrivalSchedule, FaultPlan, Runtime, RuntimeConfig, RuntimeSnapshot, ShardBy,
};
use postcard::sim::{trace_to_arrivals, TenantScenario};
use proptest::prelude::*;

fn ckpt_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("postcard-shard-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A quad-tenant instance (4 disjoint clusters of 3 DCs) and the shard
/// count that matches its tenant count.
fn quad_instance(seed: u64) -> (postcard::net::Network, ArrivalSchedule, usize) {
    let scenario = TenantScenario::quad();
    let network = scenario.network(seed);
    let arrivals = trace_to_arrivals(&scenario.trace(seed ^ 0x00C0_FFEE));
    (network, arrivals, scenario.tenants)
}

fn run_runtime(
    network: postcard::net::Network,
    arrivals: ArrivalSchedule,
    num_slots: u64,
    config: RuntimeConfig,
) -> Runtime {
    let mut rt = Runtime::new(network, arrivals, FaultPlan::none(), num_slots, config).unwrap();
    rt.run_to_end().unwrap();
    rt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On tenant-disjoint workloads the sharded run reproduces the
    /// unsharded admissions exactly and its bill matches the unsharded
    /// objective (per-shard LPs decompose the block-diagonal instance).
    #[test]
    fn sharded_matches_unsharded_on_tenant_disjoint_workloads(seed in 0u64..1_000) {
        let num_slots = TenantScenario::quad().num_slots;
        let (network, arrivals, tenants) = quad_instance(seed);

        let unsharded = run_runtime(
            network.clone(),
            arrivals.clone(),
            num_slots,
            RuntimeConfig::default(),
        );
        let sharded = run_runtime(
            network,
            arrivals,
            num_slots,
            RuntimeConfig {
                shards: tenants,
                shard_by: ShardBy::Tenant,
                ..Default::default()
            },
        );

        prop_assert_eq!(sharded.metrics().counter("shard_conflicts"), 0);
        prop_assert_eq!(
            sharded.controller().admission_counts(),
            unsharded.controller().admission_counts()
        );
        let (acc_s, rej_s) = sharded.controller().admission_volumes();
        let (acc_u, rej_u) = unsharded.controller().admission_volumes();
        prop_assert!((acc_s - acc_u).abs() <= 1e-6 * acc_u.max(1.0));
        prop_assert!((rej_s - rej_u).abs() <= 1e-6 * rej_u.max(1.0));

        let bill_s = sharded.final_cost_per_slot();
        let bill_u = unsharded.final_cost_per_slot();
        prop_assert!(
            (bill_s - bill_u).abs() <= 1e-6 * bill_u.abs().max(1.0),
            "sharded bill {} vs unsharded {}", bill_s, bill_u
        );
    }

    /// Same sharded instance solved twice gives bit-identical results:
    /// worker threads race, but the fixed shard-order reconciliation makes
    /// the merge — and therefore every downstream number — deterministic.
    #[test]
    fn repeated_sharded_runs_are_bit_identical(seed in 0u64..1_000) {
        let num_slots = TenantScenario::quad().num_slots;
        let config = RuntimeConfig {
            shards: 4,
            shard_by: ShardBy::Tenant,
            ..Default::default()
        };
        let (network, arrivals, _) = quad_instance(seed);
        let a = run_runtime(network.clone(), arrivals.clone(), num_slots, config.clone());
        let b = run_runtime(network, arrivals, num_slots, config);

        prop_assert_eq!(a.cost_history().len(), b.cost_history().len());
        for (x, y) in a.cost_history().iter().zip(b.cost_history()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(a.controller().export_state(), b.controller().export_state());
        prop_assert_eq!(a.metrics().to_json(), b.metrics().to_json());
    }
}

#[test]
fn reconciliation_never_overcommits_shared_links() {
    // Two tenants, one shared 30 GB/slot link. Each wants 40 GB across a
    // 2-slot window, so each shard's optimistic solo plan is feasible, but
    // the two plans cannot both fit: total demand (80) exceeds the window
    // capacity (60). Validation in shard order must flag the collision and
    // the serial re-solve must reject the loser rather than overbook.
    let network = NetworkBuilder::new(2).link(DcId(0), DcId(1), 2.0, 30.0).build();
    let arrivals = ArrivalSchedule::from_requests(vec![
        TransferRequest::new(FileId::for_tenant(0, 0), DcId(0), DcId(1), 40.0, 2, 0),
        TransferRequest::new(FileId::for_tenant(1, 0), DcId(0), DcId(1), 40.0, 2, 0),
    ]);

    let rt = run_runtime(
        network.clone(),
        arrivals,
        2,
        RuntimeConfig { shards: 2, shard_by: ShardBy::Tenant, ..Default::default() },
    );

    assert!(
        rt.metrics().counter("shard_conflicts") > 0,
        "identical optimistic plans on one 30 GB link must collide"
    );
    let (accepted, rejected) = rt.controller().admission_counts();
    assert_eq!((accepted, rejected), (1, 1), "only one 40 GB file fits the shared window");

    let ledger = rt.controller().ledger();
    for link in network.links() {
        for slot in 0..ledger.horizon() {
            let volume = ledger.volume(link.from, link.to, slot);
            assert!(
                volume <= link.capacity + 1e-6,
                "link {}->{} overbooked at slot {slot}: {volume} > {}",
                link.from.0,
                link.to.0,
                link.capacity
            );
        }
    }
}

#[test]
fn four_shard_kill_and_resume_matches_uninterrupted_run() {
    let num_slots = TenantScenario::quad().num_slots;
    let (network, arrivals, tenants) = quad_instance(23);
    assert_eq!(tenants, 4);
    // The reference run checkpoints too, so bookkeeping counters like
    // `checkpoints_written` agree with the victims' in the comparison.
    let config = |path: &std::path::Path| RuntimeConfig {
        shards: 4,
        shard_by: ShardBy::Tenant,
        checkpoint_every: 1,
        checkpoint_path: Some(path.to_string_lossy().into_owned()),
        ..Default::default()
    };

    let full_path = ckpt_path("kill4_full.json");
    let full = run_runtime(network.clone(), arrivals.clone(), num_slots, config(&full_path));

    for kill_at in [1, 3, 5] {
        let path = ckpt_path(&format!("kill4_{kill_at}.json"));
        let mut victim = Runtime::new(
            network.clone(),
            arrivals.clone(),
            FaultPlan::none(),
            num_slots,
            config(&path),
        )
        .unwrap();
        for _ in 0..kill_at {
            victim.run_slot().unwrap().expect("slot within the run");
        }
        drop(victim); // the crash: no graceful shutdown, no final checkpoint

        // The manifest references one stamped snapshot file per shard, all
        // present on disk next to it.
        let manifest = RuntimeSnapshot::load(&path).unwrap();
        assert_eq!(manifest.shard_refs.len(), 4, "kill at {kill_at}: manifest incomplete");
        for shard_ref in &manifest.shard_refs {
            let file = path.parent().unwrap().join(&shard_ref.file);
            assert!(file.exists(), "kill at {kill_at}: missing {}", shard_ref.file);
        }

        let mut resumed = Runtime::resume(&path).unwrap();
        assert_eq!(resumed.next_slot(), kill_at);
        assert_eq!(resumed.shard_states().map(<[_]>::len), Some(4));
        resumed.run_to_end().unwrap();

        assert_eq!(
            resumed.cost_history().len(),
            full.cost_history().len(),
            "kill at {kill_at}: missing slots"
        );
        for (slot, (a, b)) in resumed.cost_history().iter().zip(full.cost_history()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "kill at {kill_at}: cost diverged at slot {slot} ({a} vs {b})"
            );
        }
        assert_eq!(
            resumed.controller().export_state(),
            full.controller().export_state(),
            "kill at {kill_at}: controller state diverged"
        );
        assert_eq!(
            resumed.metrics().to_json(),
            full.metrics().to_json(),
            "kill at {kill_at}: metrics diverged"
        );

        // Clean up the manifest and its shard files.
        if let Some(dir) = path.parent() {
            for entry in std::fs::read_dir(dir).unwrap().flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with(&format!("kill4_{kill_at}")) {
                    std::fs::remove_file(entry.path()).ok();
                }
            }
        }
    }

    if let Some(dir) = full_path.parent() {
        for entry in std::fs::read_dir(dir).unwrap().flatten() {
            if entry.file_name().to_string_lossy().starts_with("kill4_full") {
                std::fs::remove_file(entry.path()).ok();
            }
        }
    }
}

#[test]
fn wall_metrics_stay_out_of_snapshots() {
    // Per-shard and aggregate solve-wall histograms land in the separate
    // wall registry; snapshots (and thus resume determinism) never see
    // machine-dependent timings.
    let num_slots = TenantScenario::quad().num_slots;
    let (network, arrivals, tenants) = quad_instance(7);
    let rt = run_runtime(
        network,
        arrivals,
        num_slots,
        RuntimeConfig { shards: tenants, shard_by: ShardBy::Tenant, ..Default::default() },
    );

    assert!(rt.wall_metrics().histogram("solve_wall_seconds").is_some());
    for shard in 0..tenants {
        assert!(
            rt.wall_metrics().histogram(&format!("solve_wall_seconds_shard{shard}")).is_some(),
            "missing per-shard wall histogram for shard {shard}"
        );
    }
    assert!(!rt.snapshot().to_json().contains("solve_wall_seconds"));
}
