//! End-to-end reproduction of the paper's Fig. 1 motivating example.
//!
//! Datacenter D2 must send a 6 MB file to D3 within 15 minutes (3 slots);
//! the same provider operates a relay D1. Prices: D2→D3 $10, D2→D1 $1,
//! D1→D3 $3 per unit. The paper reports a per-slot cost of **20** without
//! any strategy and **12** with routing + scheduling.

use postcard::core::{
    solve_postcard, DirectScheduler, FlowLpScheduler, OnlineController, PostcardScheduler,
};
use postcard::net::{DcId, FileId, Network, NetworkBuilder, TrafficLedger, TransferRequest};

fn fig1_network() -> Network {
    NetworkBuilder::new(3)
        .link(DcId(1), DcId(2), 10.0, 1000.0)
        .link(DcId(1), DcId(0), 1.0, 1000.0)
        .link(DcId(0), DcId(2), 3.0, 1000.0)
        .build()
}

fn fig1_file() -> TransferRequest {
    TransferRequest::new(FileId(1), DcId(1), DcId(2), 6.0, 3, 0)
}

#[test]
fn direct_costs_twenty_per_slot() {
    let mut ctl = OnlineController::new(fig1_network(), DirectScheduler);
    let report = ctl.step(0, &[fig1_file()]).unwrap();
    assert!((report.cost_per_slot - 20.0).abs() < 1e-9, "{}", report.cost_per_slot);
}

#[test]
fn postcard_reaches_the_papers_twelve() {
    let mut ctl = OnlineController::new(fig1_network(), PostcardScheduler::new());
    let report = ctl.step(0, &[fig1_file()]).unwrap();
    assert!((report.cost_per_slot - 12.0).abs() < 1e-4, "{}", report.cost_per_slot);
}

#[test]
fn postcard_plan_matches_fig1b_structure() {
    // Fig. 1(b): the file is split in two 3 MB blocks pipelined over
    // D2 → D1 → D3; charged volumes are 3 on each relay link, 0 direct.
    let sol = solve_postcard(&fig1_network(), &[fig1_file()], &TrafficLedger::new(3)).unwrap();
    let plan = &sol.plan;
    assert!((plan.link_peak(DcId(1), DcId(0)) - 3.0).abs() < 1e-6);
    assert!((plan.link_peak(DcId(0), DcId(2)) - 3.0).abs() < 1e-6);
    assert!(plan.link_peak(DcId(1), DcId(2)) < 1e-6, "direct link unused");
    // Half the file waits one slot (at the source or the relay).
    assert!(plan.total_holdover() >= 3.0 - 1e-6);
}

#[test]
fn flow_based_also_prefers_the_relay_here() {
    // With ample capacity the flow model can use the relay too (at rate 2
    // on both hops): cost 2·1 + 2·3 = 8 — *cheaper* than Postcard's 12,
    // because instantaneous forwarding avoids the pipelining burst. This is
    // exactly the paper's Sec. VII observation that store-and-forward is
    // bursty when capacity is ample.
    let mut ctl = OnlineController::new(fig1_network(), FlowLpScheduler::new());
    let report = ctl.step(0, &[fig1_file()]).unwrap();
    assert!((report.cost_per_slot - 8.0).abs() < 1e-4, "{}", report.cost_per_slot);
}

#[test]
fn shorter_deadline_removes_the_advantage() {
    // With T = 1 the relay path (2 hops) is unusable in the slotted model:
    // Postcard must send everything direct in one slot (cost 60).
    let file = TransferRequest::new(FileId(1), DcId(1), DcId(2), 6.0, 1, 0);
    let sol = solve_postcard(&fig1_network(), &[file], &TrafficLedger::new(3)).unwrap();
    assert!((sol.cost_per_slot - 60.0).abs() < 1e-5, "{}", sol.cost_per_slot);
}
