//! Property tests for the ALAP fast-path admission rung.
//!
//! Two invariants, checked over randomized networks and request streams:
//!
//! 1. **Feasibility** — every plan the ALAP scheduler admits replays
//!    cleanly through [`postcard::net::TransferPlan::validate`] against the
//!    traffic already committed to the ledger, and after committing it the
//!    ledger never exceeds any link's capacity. ALAP admission is a promise
//!    the network can keep.
//! 2. **LP consistency** — ALAP never admits a request that the full
//!    Postcard LP would prove infeasible on the same residual state. The
//!    fast path is allowed to be *conservative* (reject what the LP could
//!    place), never *optimistic*.

use postcard::core::{PostcardScheduler, Scheduler};
use postcard::flow::AlapScheduler;
use postcard::net::{DcId, FileId, Network, TrafficLedger, TransferRequest, VOLUME_TOL};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NUM_DCS: usize = 4;

/// A tight complete network: capacities small enough that admissions
/// actually compete for residual bandwidth, prices seed-determined.
fn network(rng: &mut StdRng) -> Network {
    let capacity = rng.gen_range(20.0..=60.0);
    let mut price_rng = StdRng::seed_from_u64(rng.gen());
    Network::complete_with_prices(NUM_DCS, capacity, |_, _| price_rng.gen_range(1.0..=10.0))
}

/// A randomized request; sizes range up to well above a single link-slot so
/// both multi-slot placements and rejections occur.
fn request(rng: &mut StdRng, id: u64) -> TransferRequest {
    let src = rng.gen_range(0..NUM_DCS);
    let dst = (src + rng.gen_range(1..NUM_DCS)) % NUM_DCS;
    TransferRequest::new(
        FileId(id),
        DcId(src),
        DcId(dst),
        rng.gen_range(1.0..=80.0),
        rng.gen_range(1..=4),
        rng.gen_range(0..4),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every ALAP-admitted plan validates against the committed ledger and
    /// never pushes any link past capacity; and on the exact residual state
    /// where ALAP said yes, the full Postcard LP also finds a placement.
    #[test]
    fn admitted_plans_are_feasible_and_lp_agrees(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = network(&mut rng);
        let mut alap = AlapScheduler::new(&net);
        let mut ledger = TrafficLedger::new(NUM_DCS);
        let mut admits = 0u32;

        for id in 0..12 {
            let f = request(&mut rng, id);
            // Snapshot the residual state *before* the admission decision:
            // the LP-consistency check must run against exactly this ledger.
            let before = ledger.clone();
            let Ok(plan) = alap.admit(&net, &f) else { continue };
            admits += 1;

            // (1) The plan is valid on top of everything committed so far:
            // capacity, per-slot conservation at relays, release/deadline
            // windows, and full delivery.
            let violations =
                plan.validate(&net, &[f], |from, to, slot| before.volume(from, to, slot));
            prop_assert!(
                violations.is_empty(),
                "seed {seed}, file {id}: ALAP plan invalid: {violations:?}"
            );

            // (2) The LP can also place this file on the same residuals —
            // ALAP admission implies LP feasibility.
            let mut lp = PostcardScheduler::new();
            let lp_result = lp.schedule(&net, &[f], &before);
            prop_assert!(
                lp_result.is_ok(),
                "seed {seed}, file {id}: ALAP admitted a request the LP proves infeasible: {:?}",
                lp_result.err()
            );

            plan.apply_to_ledger(&mut ledger);
        }

        // The committed ledger never exceeds capacity on any link at any
        // slot the stream could have touched.
        for l in net.links() {
            for slot in 0..16 {
                let used = ledger.volume(l.from, l.to, slot);
                prop_assert!(
                    used <= l.capacity + VOLUME_TOL,
                    "seed {seed}: link {:?}->{:?} over capacity at slot {slot}: {used} > {}",
                    l.from, l.to, l.capacity
                );
            }
        }

        // The generator must actually exercise admissions (not vacuous).
        prop_assert!(admits > 0, "seed {seed}: no admissions — scenario too tight");
    }

    /// Batch admission is exactly as feasible as its parts: an admitted
    /// batch replays through the ledger without exceeding capacity, and a
    /// rejected batch leaves the residual grid byte-identical (rollback).
    #[test]
    fn admitted_batches_replay_within_capacity(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = network(&mut rng);
        let mut alap = AlapScheduler::new(&net);
        let mut ledger = TrafficLedger::new(NUM_DCS);

        for batch_no in 0..4u64 {
            let batch: Vec<TransferRequest> =
                (0..3).map(|i| request(&mut rng, batch_no * 3 + i)).collect();
            let grid_before = alap.grid().clone();
            match alap.admit_batch(&net, &batch) {
                Ok(plan) => {
                    let violations = plan.validate(&net, &batch, |from, to, slot| {
                        ledger.volume(from, to, slot)
                    });
                    prop_assert!(
                        violations.is_empty(),
                        "seed {seed}, batch {batch_no}: invalid batch plan: {violations:?}"
                    );
                    plan.apply_to_ledger(&mut ledger);
                }
                Err(_) => {
                    prop_assert!(
                        *alap.grid() == grid_before,
                        "seed {seed}, batch {batch_no}: rejection must roll back the grid"
                    );
                }
            }
        }

        for l in net.links() {
            for slot in 0..16 {
                let used = ledger.volume(l.from, l.to, slot);
                prop_assert!(
                    used <= l.capacity + VOLUME_TOL,
                    "seed {seed}: link {:?}->{:?} over capacity at slot {slot}: {used} > {}",
                    l.from, l.to, l.capacity
                );
            }
        }
    }
}
