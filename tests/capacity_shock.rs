//! Failure injection: link capacity degradation between scheduling rounds.
//!
//! The paper assumes static capacities; a real deployment sees maintenance
//! and failures. These tests verify the pieces degrade *detectably and
//! gracefully*: committed plans that a shock invalidates are caught by the
//! validators, residual accounting reports the over-commitment, and
//! re-planning around the shock succeeds when capacity allows.

use postcard::core::{solve_postcard, PostcardError};
use postcard::net::{
    DcId, FileId, Network, NetworkBuilder, PlanViolation, TrafficLedger, TransferRequest,
};

fn chain(cap: f64) -> Network {
    NetworkBuilder::new(3).link(DcId(0), DcId(1), 1.0, cap).link(DcId(1), DcId(2), 2.0, cap).build()
}

#[test]
fn shock_invalidates_committed_plan_detectably() {
    let net = chain(10.0);
    let files = [TransferRequest::new(FileId(1), DcId(0), DcId(2), 16.0, 3, 0)];
    let ledger = TrafficLedger::new(3);
    let sol = solve_postcard(&net, &files, &ledger).unwrap();
    assert!(sol.plan.is_valid(&net, &files, |_, _, _| 0.0));

    // The first hop degrades to 5 GB/slot after planning.
    let mut degraded = net.clone();
    degraded.set_capacity(DcId(0), DcId(1), 5.0);
    let violations = sol.plan.validate(&degraded, &files, |_, _, _| 0.0);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, PlanViolation::Capacity { from: DcId(0), to: DcId(1), .. })),
        "shock must surface as a capacity violation: {violations:?}"
    );
}

#[test]
fn residual_goes_negative_on_overcommitment() {
    // The ledger records what was committed; when capacity shrinks below
    // the committed volume, the residual exposes the deficit instead of
    // silently clamping.
    let net = chain(10.0);
    let mut ledger = TrafficLedger::new(3);
    ledger.record(DcId(0), DcId(1), 4, 9.0);
    let mut degraded = net.clone();
    degraded.set_capacity(DcId(0), DcId(1), 5.0);
    assert_eq!(ledger.residual(&net, DcId(0), DcId(1), 4), 1.0);
    assert_eq!(ledger.residual(&degraded, DcId(0), DcId(1), 4), -4.0);
}

#[test]
fn replanning_around_a_shock_succeeds_when_possible() {
    // Round 1 commits traffic; the shock hits; round 2 must route its file
    // around both the committed traffic and the degraded link.
    let net = NetworkBuilder::new(3)
        .link(DcId(0), DcId(1), 1.0, 10.0)
        .link(DcId(1), DcId(2), 2.0, 10.0)
        .link(DcId(0), DcId(2), 8.0, 10.0) // expensive bypass
        .build();
    let mut ledger = TrafficLedger::new(3);
    let f1 = TransferRequest::new(FileId(1), DcId(0), DcId(2), 10.0, 2, 0);
    let sol1 = solve_postcard(&net, &[f1], &ledger).unwrap();
    sol1.plan.apply_to_ledger(&mut ledger);

    // Shock: relay hop 0→1 drops to 2 GB/slot from slot 2 onward. Model it
    // as a degraded network for the second round.
    let mut degraded = net.clone();
    degraded.set_capacity(DcId(0), DcId(1), 2.0);
    let f2 = TransferRequest::new(FileId(2), DcId(0), DcId(2), 12.0, 2, 2);
    let sol2 = solve_postcard(&degraded, &[f2], &ledger).unwrap();
    // Valid against the degraded capacities plus the earlier commitments.
    let violations = sol2.plan.validate(&degraded, &[f2], |i, j, s| ledger.volume(i, j, s));
    assert!(violations.is_empty(), "{violations:?}");
    // The bypass must carry most of it: the degraded relay admits at most
    // 2 GB/slot into the relay during slot 2 (the only slot that can still
    // make the 2-hop deadline).
    let relayed: f64 = (2..=3).map(|s| sol2.plan.volume(FileId(2), s, DcId(0), DcId(1))).sum();
    assert!(relayed <= 2.0 + 1e-6, "relayed {relayed}");
}

#[test]
fn replanning_reports_infeasible_when_shock_is_fatal() {
    let net = chain(10.0);
    let mut degraded = net.clone();
    degraded.set_capacity(DcId(0), DcId(1), 1.0);
    // 16 GB in 3 slots cannot leave the source over a 1 GB/slot only path.
    let f = TransferRequest::new(FileId(1), DcId(0), DcId(2), 16.0, 3, 0);
    let ledger = TrafficLedger::new(3);
    assert_eq!(solve_postcard(&degraded, &[f], &ledger).unwrap_err(), PostcardError::Infeasible);
}

#[test]
fn shock_on_unrelated_link_changes_nothing() {
    let net = NetworkBuilder::new(4)
        .link(DcId(0), DcId(1), 1.0, 10.0)
        .link(DcId(1), DcId(2), 2.0, 10.0)
        .link(DcId(3), DcId(2), 1.0, 10.0)
        .build();
    let f = TransferRequest::new(FileId(1), DcId(0), DcId(2), 10.0, 2, 0);
    let ledger = TrafficLedger::new(4);
    let before = solve_postcard(&net, &[f], &ledger).unwrap();
    let mut shocked = net.clone();
    shocked.set_capacity(DcId(3), DcId(2), 1.0);
    let after = solve_postcard(&shocked, &[f], &ledger).unwrap();
    assert!((before.cost_per_slot - after.cost_per_slot).abs() < 1e-9);
}
