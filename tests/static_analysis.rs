//! Acceptance: every model the builder produces for the paper's preset
//! scenarios passes the full `postcard-analyze` model pass — including
//! mid-run models, where the ledger carries committed traffic and the
//! network's residual capacities have been drawn down by earlier slots.
//!
//! This is the integration-level mirror of the analyzer's own proptest
//! (randomized fresh-ledger instances) and fixture corpus (recall on
//! malformed models): the scenarios that reproduce the paper's figures
//! must never trip a diagnostic.

use postcard::analyze::check_problem;
use postcard::core::{
    build_postcard_problem, OnlineController, PostcardConfig, PostcardError, PostcardScheduler,
};
use postcard::sim::{Scenario, Workload};

/// Runs a tiny variant of `scenario` through the online controller and
/// checks the problem the builder emits at every slot, on the evolving
/// ledger state.
fn preset_models_stay_clean(scenario: Scenario, seed: u64) {
    let s = scenario.tiny();
    let mut workload = s.workload(seed);
    let mut controller = OnlineController::new(s.network(seed), PostcardScheduler::new());
    for slot in 0..s.num_slots {
        let batch = workload.batch(slot);
        match build_postcard_problem(
            controller.network(),
            &batch,
            controller.ledger(),
            &PostcardConfig::default(),
        ) {
            Ok(problem) => {
                let report = check_problem(&problem);
                assert!(
                    report.is_empty(),
                    "{} slot {slot}: analyzer flagged a builder-produced model:\n{}",
                    s.name,
                    report.render_text()
                );
            }
            // Under throttled capacity a drawn-down network can make a
            // whole batch unroutable; the controller handles that with
            // per-file admission, so it is not an analyzer concern.
            Err(PostcardError::Infeasible) => {}
            Err(e) => panic!("{} slot {slot}: unexpected build failure: {e}", s.name),
        }
        controller.step(slot, &batch).expect("preset batches schedule");
    }
}

#[test]
fn fig4_preset_models_pass_static_analysis() {
    preset_models_stay_clean(Scenario::fig4(), 21);
}

#[test]
fn fig5_preset_models_pass_static_analysis() {
    preset_models_stay_clean(Scenario::fig5(), 22);
}

#[test]
fn fig6_preset_models_pass_static_analysis() {
    preset_models_stay_clean(Scenario::fig6(), 23);
}

#[test]
fn fig7_preset_models_pass_static_analysis() {
    preset_models_stay_clean(Scenario::fig7(), 24);
}
