//! End-to-end behaviour of the Sec. VI extension problems.

use postcard::core::extensions::{
    solve_budget_constrained, solve_bulk_max_transfer, BulkCapacityMode,
};
use postcard::net::{DcId, FileId, Network, TrafficLedger, TransferRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn instance(seed: u64) -> (Network, Vec<TransferRequest>, TrafficLedger) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 5;
    let network = Network::complete_with_prices(n, 40.0, |_, _| rng.gen_range(1.0..=10.0));
    let files: Vec<TransferRequest> = (0..5)
        .map(|k| {
            let src = rng.gen_range(0..n);
            let mut dst = rng.gen_range(0..n);
            while dst == src {
                dst = rng.gen_range(0..n);
            }
            TransferRequest::new(
                FileId(k),
                DcId(src),
                DcId(dst),
                rng.gen_range(20.0..=60.0),
                rng.gen_range(2..=4),
                0,
            )
        })
        .collect();
    let mut ledger = TrafficLedger::new(n);
    // Some links carry historical peaks (sunk cost, free headroom).
    for l in network.links() {
        if rng.gen_bool(0.4) {
            ledger.record(l.from, l.to, 1000, rng.gen_range(5.0..20.0));
        }
    }
    (network, files, ledger)
}

#[test]
fn budget_delivery_is_monotone_in_budget() {
    for seed in 0..4u64 {
        let (network, files, ledger) = instance(seed);
        let base = ledger.cost_per_slot(&network);
        let mut prev = -1.0;
        for step in 0..6 {
            let budget = base + 60.0 * step as f64;
            let sol = solve_budget_constrained(&network, &files, &ledger, budget).unwrap();
            assert!(
                sol.total_delivered >= prev - 1e-6,
                "seed {seed}: delivery dropped ({} after {prev}) at budget {budget}",
                sol.total_delivered
            );
            assert!(sol.cost_per_slot <= budget + 1e-6);
            prev = sol.total_delivered;
        }
    }
}

#[test]
fn budget_plans_validate_at_delivered_sizes() {
    let (network, files, ledger) = instance(9);
    let budget = ledger.cost_per_slot(&network) + 150.0;
    let sol = solve_budget_constrained(&network, &files, &ledger, budget).unwrap();
    let served = sol.delivered_requests(&files);
    let violations = sol.plan.validate(&network, &served, |i, j, s| ledger.volume(i, j, s));
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn unlimited_budget_matches_full_delivery() {
    let (network, files, ledger) = instance(3);
    let total: f64 = files.iter().map(|f| f.size_gb).sum();
    let sol = solve_budget_constrained(&network, &files, &ledger, 1e9).unwrap();
    assert!((sol.total_delivered - total).abs() < 1e-4, "{}", sol.total_delivered);
}

#[test]
fn bulk_any_residual_dominates_paid_leftover() {
    for seed in 20..24u64 {
        let (network, files, ledger) = instance(seed);
        let paid =
            solve_bulk_max_transfer(&network, &files, &ledger, BulkCapacityMode::PaidLeftoverOnly)
                .unwrap();
        let any = solve_bulk_max_transfer(&network, &files, &ledger, BulkCapacityMode::AnyResidual)
            .unwrap();
        assert!(
            any.total_delivered >= paid.total_delivered - 1e-6,
            "seed {seed}: {} < {}",
            any.total_delivered,
            paid.total_delivered
        );
    }
}

#[test]
fn bulk_paid_leftover_is_free() {
    for seed in 30..34u64 {
        let (network, files, ledger) = instance(seed);
        let before = ledger.cost_per_slot(&network);
        let sol =
            solve_bulk_max_transfer(&network, &files, &ledger, BulkCapacityMode::PaidLeftoverOnly)
                .unwrap();
        let mut after = ledger.clone();
        sol.plan.apply_to_ledger(&mut after);
        assert!(
            (after.cost_per_slot(&network) - before).abs() < 1e-6,
            "seed {seed}: paid-leftover transfer changed the bill"
        );
        let served = sol.delivered_requests(&files);
        assert!(sol.plan.validate(&network, &served, |i, j, s| ledger.volume(i, j, s)).is_empty());
    }
}

#[test]
fn bulk_delivery_bounded_by_request_total() {
    let (network, files, ledger) = instance(40);
    let total: f64 = files.iter().map(|f| f.size_gb).sum();
    let sol =
        solve_bulk_max_transfer(&network, &files, &ledger, BulkCapacityMode::AnyResidual).unwrap();
    assert!(sol.total_delivered <= total + 1e-6);
    for f in &files {
        let y = sol.delivered[&f.id];
        assert!((0.0..=f.size_gb + 1e-9).contains(&y));
    }
}

#[test]
fn budget_with_generous_cap_beats_bulk_paid_only() {
    // Spending money can only increase what is deliverable relative to
    // free-only transfers on the same instance.
    let (network, files, ledger) = instance(50);
    let free =
        solve_bulk_max_transfer(&network, &files, &ledger, BulkCapacityMode::PaidLeftoverOnly)
            .unwrap();
    let spend = solve_budget_constrained(&network, &files, &ledger, 1e9).unwrap();
    assert!(spend.total_delivered >= free.total_delivered - 1e-6);
}
