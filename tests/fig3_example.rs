//! End-to-end reproduction of the paper's Fig. 3 worked example.
//!
//! Two files share a 4-datacenter network (capacity 5 everywhere):
//! File 1: D2 → D4, size 8, deadline 4 slots; File 2: D1 → D4, size 10,
//! deadline 2 slots; both released at t = 3. The paper reports per-slot
//! costs of **32.67** for Postcard, **50** for the flow-based approach, and
//! **52** with no strategy.
//!
//! The figure's link prices are not printed in the text; the prices below
//! were reconstructed so that *all three* published numbers emerge
//! (uniquely determined given the narrative: a21 = 1, a14 = 6,
//! a23 + a34 = 10, a24 = 11; see DESIGN.md).

use postcard::core::{solve_postcard, DirectScheduler, OnlineController};
use postcard::flow::{greedy_cheapest_path, two_phase_baseline, unified_flow_lp};
use postcard::net::{DcId, FileId, Network, TrafficLedger, TransferRequest};

/// Indices: D1 = 0, D2 = 1, D3 = 2, D4 = 3.
fn fig3_network() -> Network {
    Network::complete_with_prices(4, 5.0, |from, to| match (from.0, to.0) {
        (1, 0) => 1.0,  // D2 → D1
        (0, 3) => 6.0,  // D1 → D4
        (1, 2) => 4.0,  // D2 → D3
        (2, 3) => 6.0,  // D3 → D4
        (1, 3) => 11.0, // D2 → D4
        _ => 20.0,
    })
}

fn file1() -> TransferRequest {
    TransferRequest::new(FileId(1), DcId(1), DcId(3), 8.0, 4, 3)
}

fn file2() -> TransferRequest {
    TransferRequest::new(FileId(2), DcId(0), DcId(3), 10.0, 2, 3)
}

#[test]
fn postcard_reaches_32_67() {
    let net = fig3_network();
    let files = [file1(), file2()];
    let sol = solve_postcard(&net, &files, &TrafficLedger::new(4)).unwrap();
    assert!((sol.cost_per_slot - 98.0 / 3.0).abs() < 1e-4, "{}", sol.cost_per_slot);
    assert!(sol.plan.is_valid(&net, &files, |_, _, _| 0.0));
}

#[test]
fn postcard_time_shifts_onto_the_paid_cheap_link() {
    // The mechanism the paper highlights: File 2 pays for link D1→D4 at
    // volume 5 during slots 3–4; File 1 stores and forwards over the same
    // link in slots 5–6 — free under the 100-th percentile scheme.
    let net = fig3_network();
    let files = [file1(), file2()];
    let sol = solve_postcard(&net, &files, &TrafficLedger::new(4)).unwrap();
    // Charged volume on D1→D4 stays at File 2's rate 5.
    assert!((sol.charged[&(0, 3)] - 5.0).abs() < 1e-5);
    // File 1's 8 GB traverse D1→D4 in the later slots.
    let late: f64 = (5..=6).map(|s| sol.plan.volume(FileId(1), s, DcId(0), DcId(3))).sum();
    assert!((late - 8.0).abs() < 1e-5, "late volume = {late}");
    // And storage is actually used.
    assert!(sol.plan.total_holdover() > 1.0);
}

#[test]
fn greedy_flow_costs_50() {
    // Urgent file first (the paper processes File 2's reservation first).
    let net = fig3_network();
    let out = greedy_cheapest_path(&net, &[file2(), file1()], &TrafficLedger::new(4));
    assert!(out.unrouted.is_empty());
    let mut ledger = TrafficLedger::new(4);
    out.assignment.apply_to_ledger(&[file2(), file1()], &mut ledger);
    assert!((ledger.cost_per_slot(&net) - 50.0).abs() < 1e-6);
    // File 2 takes the cheapest path D1→D4; File 1 is displaced to
    // D2→D3→D4 (the cheapest *available* path).
    assert!((out.assignment.rate(FileId(2), DcId(0), DcId(3)) - 5.0).abs() < 1e-9);
    assert!((out.assignment.rate(FileId(1), DcId(1), DcId(2)) - 2.0).abs() < 1e-9);
}

#[test]
fn optimal_flow_lp_cannot_beat_50_either() {
    let net = fig3_network();
    let files = [file1(), file2()];
    let a = unified_flow_lp(&net, &files, &TrafficLedger::new(4)).unwrap();
    let mut ledger = TrafficLedger::new(4);
    a.apply_to_ledger(&files, &mut ledger);
    let cost = ledger.cost_per_slot(&net);
    assert!((cost - 50.0).abs() < 1e-4, "{cost}");
}

#[test]
fn two_phase_flow_matches_50() {
    let net = fig3_network();
    let files = [file1(), file2()];
    let out = two_phase_baseline(&net, &files, &TrafficLedger::new(4)).unwrap();
    let mut ledger = TrafficLedger::new(4);
    out.assignment.apply_to_ledger(&files, &mut ledger);
    assert!((ledger.cost_per_slot(&net) - 50.0).abs() < 1e-4);
}

#[test]
fn direct_costs_52() {
    let mut ctl = OnlineController::new(fig3_network(), DirectScheduler);
    let report = ctl.step(3, &[file1(), file2()]).unwrap();
    assert!((report.cost_per_slot - 52.0).abs() < 1e-9, "{}", report.cost_per_slot);
}

#[test]
fn ranking_matches_the_paper() {
    // Postcard < flow-based < direct on this capacity-limited example.
    let net = fig3_network();
    let files = [file1(), file2()];
    let postcard = solve_postcard(&net, &files, &TrafficLedger::new(4)).unwrap().cost_per_slot;
    let flow = {
        let a = unified_flow_lp(&net, &files, &TrafficLedger::new(4)).unwrap();
        let mut l = TrafficLedger::new(4);
        a.apply_to_ledger(&files, &mut l);
        l.cost_per_slot(&net)
    };
    let direct = {
        let mut ctl = OnlineController::new(net, DirectScheduler);
        ctl.step(3, &files).unwrap().cost_per_slot
    };
    assert!(postcard < flow && flow < direct, "{postcard} vs {flow} vs {direct}");
}
