//! The paper's Sec. VII findings, asserted as *shapes* on small paired
//! simulations (the full figure tables live in the bench harness and
//! EXPERIMENTS.md):
//!
//! 1. with **ample** capacity the flow-based approach beats Postcard
//!    (store-and-forward is bursty);
//! 2. with **throttled** capacity Postcard beats the flow-based approach
//!    (time-shifting exploits already-paid links);
//! 3. for Postcard, more delay tolerance means lower cost.

use postcard::sim::{run_scenario, Approach, Scenario};

/// A small paired simulation: enough slots/runs for the regime signal,
/// small enough for the test budget.
fn shrink(mut s: Scenario) -> Scenario {
    s.num_dcs = 5;
    s.files_per_slot = (1, 3);
    s.num_slots = 15;
    s.num_runs = 3;
    s
}

#[test]
fn ample_capacity_favors_the_flow_model() {
    let s = shrink(Scenario::fig4());
    let out = run_scenario(&s, &Approach::paper_pair(), 11).unwrap();
    let (postcard, flow) = (&out[0], &out[1]);
    assert!(
        flow.avg_cost.mean < postcard.avg_cost.mean,
        "flow {} should beat postcard {} with ample capacity",
        flow.avg_cost.mean,
        postcard.avg_cost.mean
    );
}

#[test]
fn throttled_capacity_favors_postcard() {
    let s = shrink(Scenario::fig6());
    let out = run_scenario(&s, &Approach::paper_pair(), 11).unwrap();
    let (postcard, flow) = (&out[0], &out[1]);
    assert!(
        postcard.avg_cost.mean < flow.avg_cost.mean,
        "postcard {} should beat flow {} with throttled capacity",
        postcard.avg_cost.mean,
        flow.avg_cost.mean
    );
}

#[test]
fn delay_tolerance_lowers_postcard_cost_with_ample_capacity() {
    let urgent = shrink(Scenario::fig4()); // max T = 3
    let patient = shrink(Scenario::fig5()); // max T = 8
    let a = run_scenario(&urgent, &[Approach::Postcard], 11).unwrap();
    let b = run_scenario(&patient, &[Approach::Postcard], 11).unwrap();
    assert!(
        b[0].avg_cost.mean < a[0].avg_cost.mean,
        "patient {} should be cheaper than urgent {}",
        b[0].avg_cost.mean,
        a[0].avg_cost.mean
    );
}

#[test]
fn delay_tolerance_lowers_postcard_cost_with_throttled_capacity() {
    let urgent = shrink(Scenario::fig6()); // max T = 3
    let patient = shrink(Scenario::fig7()); // max T = 8
    let a = run_scenario(&urgent, &[Approach::Postcard], 11).unwrap();
    let b = run_scenario(&patient, &[Approach::Postcard], 11).unwrap();
    assert!(
        b[0].avg_cost.mean < a[0].avg_cost.mean,
        "patient {} should be cheaper than urgent {}",
        b[0].avg_cost.mean,
        a[0].avg_cost.mean
    );
}

#[test]
fn direct_is_never_the_winner() {
    let s = shrink(Scenario::fig6());
    let out =
        run_scenario(&s, &[Approach::Postcard, Approach::FlowLp, Approach::Direct], 11).unwrap();
    let direct = out.iter().find(|o| o.approach == Approach::Direct).unwrap();
    // `direct` rejects whatever does not fit its single link, so compare on
    // throughput-normalized cost, where it must lose to both optimizers.
    for other in out.iter().filter(|o| o.approach != Approach::Direct) {
        assert!(
            other.cost_per_gb.mean < direct.cost_per_gb.mean + 1e-9,
            "{} ($/GB {}) should beat direct ($/GB {})",
            other.approach,
            other.cost_per_gb.mean,
            direct.cost_per_gb.mean
        );
    }
}
