//! End-to-end acceptance tests of the crash-safe controller service.
//!
//! The two headline properties of `postcard-runtime`:
//!
//! 1. **Crash-safety** — killing a run at an arbitrary slot and resuming
//!    from the latest checkpoint reproduces the uninterrupted run *bit for
//!    bit* (final bill, full cost history, metrics).
//! 2. **Fault-tolerance** — with the Postcard LP forced to time out, the
//!    fallback chain still commits a valid decision every slot, no file is
//!    lost to the fault, and every activation is visible in the metrics.
//!
//! Validity of every committed decision (capacity, ledger residuals, and
//! delivery-by-deadline) is enforced by the controller's debug assertions,
//! which are active in these test builds: any committed plan that missed a
//! deadline would abort the test.
//!
//! Since snapshot v4 the crash-safety property also covers the admission
//! backlog: a run killed while carrying requeued work resumes bit-identically
//! because the queue contents (and requeue counts) travel in the checkpoint.
//! Snapshot v5 extends that to the queue's overflow accounting
//! (`queue_dropped`) and to runs with the ALAP fast-path rung enabled.
//! Snapshot v6 adds the shard manifest (`shard_refs` plus the `shards` /
//! `shard_by` config fields), so v5 and older snapshots are rejected by the
//! version probe; sharded crash/resume is exercised in `tests/shard.rs`.

use postcard::net::{DcId, FileId, Network, TransferRequest};
use postcard::runtime::{
    ArrivalSchedule, FaultPlan, Runtime, RuntimeConfig, RuntimeSnapshot, TierKind,
};
use postcard::sim::{trace_to_arrivals, Trace, UniformWorkload, WorkloadConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A complete network with ample capacity (feasible for every tier) and
/// seed-determined prices, plus a small multi-slot arrival schedule.
fn instance(seed: u64, num_slots: u64) -> (Network, ArrivalSchedule) {
    let mut rng = StdRng::seed_from_u64(seed);
    let network = Network::complete_with_prices(4, 500.0, |_, _| rng.gen_range(1.0..=10.0));
    let mut workload = UniformWorkload::new(
        WorkloadConfig {
            num_dcs: 4,
            files_per_slot: (1, 3),
            size_gb: (5.0, 20.0),
            deadline_slots: (1, 3),
        },
        seed ^ 0x00C0_FFEE,
    );
    let trace = Trace::generate(&mut workload, num_slots);
    (network, trace_to_arrivals(&trace))
}

fn ckpt_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("postcard-runtime-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn kill_at_any_slot_and_resume_matches_uninterrupted_run() {
    const SLOTS: u64 = 8;
    let faults = FaultPlan::none().force_timeout(3, TierKind::Postcard);
    let (network, arrivals) = instance(11, SLOTS);

    let mut full = Runtime::new(
        network.clone(),
        arrivals.clone(),
        faults.clone(),
        SLOTS,
        RuntimeConfig::default(),
    )
    .unwrap();
    full.run_to_end().unwrap();
    // The horizon extends past `SLOTS` so files released near the end keep
    // their full deadline windows.
    assert!(full.cost_history().len() as u64 >= SLOTS);

    for kill_at in [1, 3, 5, 7] {
        let path = ckpt_path(&format!("kill_at_{kill_at}.json"));
        let config = RuntimeConfig {
            checkpoint_every: 1,
            checkpoint_path: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let mut victim =
            Runtime::new(network.clone(), arrivals.clone(), faults.clone(), SLOTS, config).unwrap();
        for _ in 0..kill_at {
            victim.run_slot().unwrap().expect("slot within the run");
        }
        drop(victim); // the crash: no graceful shutdown, no final checkpoint

        let mut resumed = Runtime::resume(&path).unwrap();
        assert_eq!(resumed.next_slot(), kill_at);
        resumed.run_to_end().unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(
            resumed.cost_history().len(),
            full.cost_history().len(),
            "kill at {kill_at}: missing slots"
        );
        for (slot, (a, b)) in resumed.cost_history().iter().zip(full.cost_history()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "kill at {kill_at}: cost diverged at slot {slot} ({a} vs {b})"
            );
        }
        assert_eq!(
            resumed.final_cost_per_slot().to_bits(),
            full.final_cost_per_slot().to_bits(),
            "kill at {kill_at}: final bill diverged"
        );
        assert_eq!(
            resumed.controller().export_state(),
            full.controller().export_state(),
            "kill at {kill_at}: controller state diverged"
        );
    }
}

#[test]
fn kill_with_non_empty_backlog_resumes_bit_identically() {
    // A request naming an out-of-range datacenter makes the single-tier
    // chain hard-fail at slot 1 (problem construction errors, which is not
    // a per-file infeasibility), so the whole slot-1 batch is requeued and
    // the backlog is non-empty at the very boundary where the checkpoint is
    // written. Resume must carry that backlog — snapshot v4 — to stay
    // bit-identical to the uninterrupted run.
    const SLOTS: u64 = 6;
    let (network, arrivals) = instance(31, SLOTS);
    let mut requests = arrivals.requests().to_vec();
    requests.push(TransferRequest::new(FileId(9_999), DcId(7), DcId(0), 4.0, 4, 1));
    let arrivals = ArrivalSchedule::from_requests(requests);
    let tiers = vec![TierKind::Postcard];

    // Reference run checkpoints on the same cadence (to its own file) so
    // every metric, `checkpoints_written` included, is comparable.
    let full_path = ckpt_path("backlog_full.json");
    let full_config = RuntimeConfig {
        tiers: tiers.clone(),
        checkpoint_every: 1,
        checkpoint_path: Some(full_path.to_string_lossy().into_owned()),
        ..Default::default()
    };
    let mut full =
        Runtime::new(network.clone(), arrivals.clone(), FaultPlan::none(), SLOTS, full_config)
            .unwrap();
    full.run_to_end().unwrap();
    std::fs::remove_file(&full_path).ok();
    assert!(
        full.metrics().counter("requeued_total") > 0,
        "the scenario must actually exercise the backlog"
    );

    let path = ckpt_path("backlog_kill.json");
    let config = RuntimeConfig {
        tiers,
        checkpoint_every: 1,
        checkpoint_path: Some(path.to_string_lossy().into_owned()),
        ..Default::default()
    };
    let mut victim = Runtime::new(network, arrivals, FaultPlan::none(), SLOTS, config).unwrap();
    for _ in 0..2 {
        victim.run_slot().unwrap().expect("slot within the run");
    }
    drop(victim); // crash right after the degraded slot requeued its batch

    let snap = RuntimeSnapshot::load(&path).unwrap();
    assert!(!snap.queue.is_empty(), "killed with a non-empty backlog");
    assert!(snap.queue.iter().any(|e| e.attempts > 0), "requeue counts travel in the snapshot");

    let mut resumed = Runtime::resume(&path).unwrap();
    assert_eq!(resumed.next_slot(), 2);
    resumed.run_to_end().unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(resumed.cost_history().len(), full.cost_history().len());
    for (slot, (a, b)) in resumed.cost_history().iter().zip(full.cost_history()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "cost diverged at slot {slot} ({a} vs {b})");
    }
    assert_eq!(resumed.controller().export_state(), full.controller().export_state());
    assert_eq!(resumed.metrics(), full.metrics());
}

#[test]
fn kill_with_alap_and_backlog_resumes_bit_identically_including_drops() {
    // The v5 acceptance scenario: ALAP fast-path admission enabled, a
    // non-empty requeue backlog at the kill boundary, *and* overflow drops
    // at the admission-queue door before the kill. Resume must reproduce
    // the uninterrupted run bit for bit — the restored `dropped` counter
    // included, which only the snapshot (not the metrics export) carries
    // into the continuation's own later checkpoints.
    const SLOTS: u64 = 6;
    let (network, arrivals) = instance(31, SLOTS);
    let mut requests = arrivals.requests().to_vec();
    // Overflow the admission queue at slot 0: more arrivals than capacity.
    for i in 0..10 {
        requests.push(TransferRequest::new(FileId(9_000 + i), DcId(0), DcId(3), 5.0, 3, 0));
    }
    // A request naming an out-of-range datacenter. With the ALAP rung
    // force-timed-out at slot 1, the LP tier hard-fails on it (problem
    // construction, not per-file infeasibility) and the whole slot-1 batch
    // is requeued — a non-empty backlog at the checkpoint boundary.
    requests.push(TransferRequest::new(FileId(9_999), DcId(7), DcId(0), 4.0, 4, 1));
    let arrivals = ArrivalSchedule::from_requests(requests);
    let faults = FaultPlan::none().force_timeout(1, TierKind::Alap);
    let config = |path: &std::path::Path| RuntimeConfig {
        tiers: vec![TierKind::Postcard],
        alap: true,
        reopt_every: 2,
        queue_capacity: 6,
        checkpoint_every: 1,
        checkpoint_path: Some(path.to_string_lossy().into_owned()),
        ..Default::default()
    };

    let full_path = ckpt_path("alap_backlog_full.json");
    let mut full =
        Runtime::new(network.clone(), arrivals.clone(), faults.clone(), SLOTS, config(&full_path))
            .unwrap();
    full.run_to_end().unwrap();
    std::fs::remove_file(&full_path).ok();
    assert!(full.metrics().counter("alap_admits") > 0, "ALAP must admit in this scenario");
    assert!(full.metrics().counter("requeued_total") > 0, "the backlog must be exercised");
    assert!(full.metrics().counter("queue_dropped") > 0, "overflow drops must occur");

    let path = ckpt_path("alap_backlog_kill.json");
    let mut victim = Runtime::new(network, arrivals, faults, SLOTS, config(&path)).unwrap();
    for _ in 0..2 {
        victim.run_slot().unwrap().expect("slot within the run");
    }
    drop(victim); // crash right after the degraded slot requeued its batch

    let snap = RuntimeSnapshot::load(&path).unwrap();
    assert_eq!(snap.config.tiers.first(), Some(&TierKind::Alap), "--alap normalized into tiers");
    assert!(!snap.queue.is_empty(), "killed with a non-empty backlog");
    assert!(snap.queue_dropped > 0, "overflow drops happened before the kill");

    let mut resumed = Runtime::resume(&path).unwrap();
    assert_eq!(resumed.next_slot(), 2);
    resumed.run_to_end().unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(resumed.cost_history().len(), full.cost_history().len());
    for (slot, (a, b)) in resumed.cost_history().iter().zip(full.cost_history()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "cost diverged at slot {slot} ({a} vs {b})");
    }
    assert_eq!(resumed.controller().export_state(), full.controller().export_state());
    assert_eq!(resumed.metrics(), full.metrics());
    // The restored dropped counter flows into the continuation's own
    // snapshots — the exact divergence the v5 `restore` fix closes.
    let (a, b) = (resumed.snapshot(), full.snapshot());
    assert!(a.queue_dropped > 0, "dropped counter restored across the kill");
    assert_eq!(a.queue_dropped, b.queue_dropped);
}

#[test]
fn zero_capacity_outage_removes_link_from_the_slot_schedule() {
    const SLOTS: u64 = 6;
    const OUTAGE_SLOT: u64 = 2;
    let (network, arrivals) = instance(17, SLOTS);
    let (from, to) = (DcId(0), DcId(1));

    // Baseline without the fault: the link carries traffic at or after the
    // outage slot (otherwise the scenario would prove nothing).
    let mut baseline = Runtime::new(
        network.clone(),
        arrivals.clone(),
        FaultPlan::none(),
        SLOTS,
        RuntimeConfig::default(),
    )
    .unwrap();
    baseline.run_to_end().unwrap();
    let baseline_used: f64 =
        (OUTAGE_SLOT..SLOTS).map(|s| baseline.controller().ledger().volume(from, to, s)).sum();
    assert!(baseline_used > 0.0, "pick a seed where the link matters after slot {OUTAGE_SLOT}");

    let faults = FaultPlan::none().degrade(OUTAGE_SLOT, from, to, 0.0);
    let mut rt = Runtime::new(network, arrivals, faults, SLOTS, RuntimeConfig::default()).unwrap();
    rt.run_to_end().unwrap();

    assert_eq!(rt.metrics().counter("degradations_applied"), 1);
    assert_eq!(rt.metrics().counter("degradations_skipped"), 0);
    assert_eq!(rt.controller().network().capacity(from, to), Some(0.0));
    // The dead link carries exactly zero traffic from the outage slot on.
    for slot in OUTAGE_SLOT..SLOTS {
        let volume = rt.controller().ledger().volume(from, to, slot);
        assert_eq!(volume.to_bits(), 0.0f64.to_bits(), "dead link used at slot {slot}: {volume}");
    }
}

#[test]
fn committed_v3_snapshot_fixture_fails_with_version_error() {
    // The committed fixture freezes the previous format's framing. Only the
    // `version` field matters: the probe must reject it *before* the typed
    // decode, with the documented error, instead of a confusing
    // missing-field message about fields v3 never had.
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/snapshot_v3.json"
    ));
    let err = RuntimeSnapshot::load(path).unwrap_err();
    assert!(err.contains("snapshot version 3 unsupported (expected 8)"), "{err}");
    assert!(!err.contains("missing field"), "{err}");
    // The operator-facing entry point surfaces the same diagnosis.
    let err = Runtime::resume(path).unwrap_err();
    assert!(err.to_string().contains("snapshot version 3 unsupported"), "{err}");
}

#[test]
fn committed_v4_snapshot_fixture_fails_with_version_error() {
    // v4 carried the queue contents but not the `queue_dropped` counter
    // (or the ALAP config knobs). Like v3, it must be rejected by the
    // version probe — before the typed decode trips over absent fields.
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/snapshot_v4.json"
    ));
    let err = RuntimeSnapshot::load(path).unwrap_err();
    assert!(err.contains("snapshot version 4 unsupported (expected 8)"), "{err}");
    assert!(!err.contains("missing field"), "{err}");
    let err = Runtime::resume(path).unwrap_err();
    assert!(err.to_string().contains("snapshot version 4 unsupported"), "{err}");
}

#[test]
fn committed_v5_snapshot_fixture_fails_with_version_error() {
    // v5 predates the shard manifest: it has no `shard_refs` field and its
    // config lacks `shards` / `shard_by`. Like v3 and v4, the version probe
    // must reject it with the documented error before the typed decode
    // trips over the absent fields.
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/snapshot_v5.json"
    ));
    let err = RuntimeSnapshot::load(path).unwrap_err();
    assert!(err.contains("snapshot version 5 unsupported (expected 8)"), "{err}");
    assert!(!err.contains("missing field"), "{err}");
    let err = Runtime::resume(path).unwrap_err();
    assert!(err.to_string().contains("snapshot version 5 unsupported"), "{err}");
}

#[test]
fn committed_v7_snapshot_fixture_fails_with_version_error() {
    // v7 predates the billing-window work: its config has no `charging`
    // field, its fault plan has no `price_changes` / `maintenance`, and the
    // snapshot has no `pending_restores`. The fixture was generated by the
    // actual v7 binary (a real mid-run checkpoint, not hand-written JSON),
    // and the version probe must reject it before the typed decode trips
    // over any of the absent fields.
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/snapshot_v7.json"
    ));
    let err = RuntimeSnapshot::load(path).unwrap_err();
    assert!(err.contains("snapshot version 7 unsupported (expected 8)"), "{err}");
    assert!(!err.contains("missing field"), "{err}");
    let err = Runtime::resume(path).unwrap_err();
    assert!(err.to_string().contains("snapshot version 7 unsupported"), "{err}");
}

#[test]
fn sparse_checkpoints_replay_the_gap_identically() {
    // Checkpoint every 3 slots, crash mid-interval: resume rewinds to the
    // last checkpoint and deterministically re-executes the lost slots.
    const SLOTS: u64 = 8;
    let (network, arrivals) = instance(23, SLOTS);
    // The reference run checkpoints on the same cadence (to its own file) so
    // even the `checkpoints_written` counter is comparable at the end.
    let full_path = ckpt_path("sparse_full.json");
    let full_config = RuntimeConfig {
        checkpoint_every: 3,
        checkpoint_path: Some(full_path.to_string_lossy().into_owned()),
        ..Default::default()
    };
    let mut full =
        Runtime::new(network.clone(), arrivals.clone(), FaultPlan::none(), SLOTS, full_config)
            .unwrap();
    full.run_to_end().unwrap();
    std::fs::remove_file(&full_path).ok();

    let path = ckpt_path("sparse.json");
    let config = RuntimeConfig {
        checkpoint_every: 3,
        checkpoint_path: Some(path.to_string_lossy().into_owned()),
        ..Default::default()
    };
    let mut victim = Runtime::new(network, arrivals, FaultPlan::none(), SLOTS, config).unwrap();
    for _ in 0..5 {
        victim.run_slot().unwrap();
    }
    drop(victim); // crash at slot 5; the last checkpoint covered slots 0..3

    let mut resumed = Runtime::resume(&path).unwrap();
    assert_eq!(resumed.next_slot(), 3, "resume rewinds to the checkpoint");
    resumed.run_to_end().unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(resumed.cost_history().len(), full.cost_history().len());
    for (a, b) in resumed.cost_history().iter().zip(full.cost_history()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(resumed.metrics(), full.metrics());
}

#[test]
fn forced_timeouts_never_miss_a_slot_and_are_all_recorded() {
    const SLOTS: u64 = 6;
    let (network, arrivals) = instance(7, SLOTS);
    assert!(
        (0..SLOTS).all(|s| !arrivals.batch(s).is_empty()),
        "the workload must release files every slot for this test"
    );
    let faults =
        FaultPlan::none().force_timeout(2, TierKind::Postcard).force_timeout(4, TierKind::Postcard);
    let mut rt = Runtime::new(network, arrivals, faults, SLOTS, RuntimeConfig::default()).unwrap();
    let outcomes = rt.run_to_end().unwrap();

    // Every slot committed a decision (validated by debug assertions,
    // including delivery by deadline), nothing was rejected or lost. The
    // horizon may extend past `SLOTS` to cover late deadline windows.
    assert!(outcomes.len() as u64 >= SLOTS);
    assert!(outcomes.iter().all(|o| !o.degraded));
    let (_, rejected) = rt.controller().admission_counts();
    assert_eq!(rejected, 0, "ample capacity: the fault must not cost admissions");
    assert_eq!(rt.metrics().counter("files_lost_degraded"), 0);

    // The faulted slots ran on the fallback tier, the rest on Postcard.
    assert_eq!(outcomes[2].chosen_tier, Some(TierKind::FlowLp));
    assert_eq!(outcomes[4].chosen_tier, Some(TierKind::FlowLp));
    assert_eq!(outcomes[0].chosen_tier, Some(TierKind::Postcard));

    // Each activation is individually visible in the metrics export.
    assert_eq!(rt.metrics().counter("fallback_activations"), 2);
    assert_eq!(rt.metrics().counter("fallback_from_postcard"), 2);
    assert_eq!(rt.metrics().counter("tier_chosen_flow-lp"), 2);
    assert_eq!(rt.metrics().counter("slots_on_fallback_tier"), 2);
    let csv = rt.metrics().to_csv();
    assert!(csv.contains("counter,fallback_activations,0,2"), "{csv}");
    // Fallback solve latency was observed under its own tier label.
    assert!(rt.metrics().histogram("solve_latency_seconds_flow-lp").is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Snapshot → JSON → restore is lossless at any slot boundary: the
    /// restored service is indistinguishable from the one that never
    /// stopped, for arbitrary seeds and kill points.
    #[test]
    fn checkpoint_round_trip_restores_exact_state(seed in 0u64..1000, kill_at in 1u64..6) {
        const SLOTS: u64 = 6;
        let faults = FaultPlan::none().force_timeout(1, TierKind::Postcard);
        let (network, arrivals) = instance(seed, SLOTS);
        let mut original = Runtime::new(
            network,
            arrivals,
            faults,
            SLOTS,
            RuntimeConfig::default(),
        )
        .unwrap();
        for _ in 0..kill_at {
            original.run_slot().unwrap();
        }

        // Round-trip through the serialized form, not just Clone.
        let snap = RuntimeSnapshot::from_json(&original.snapshot().to_json()).unwrap();
        let mut restored = Runtime::from_snapshot(snap).unwrap();
        prop_assert_eq!(restored.next_slot(), kill_at);
        prop_assert_eq!(
            restored.controller().export_state(),
            original.controller().export_state()
        );

        original.run_to_end().unwrap();
        restored.run_to_end().unwrap();
        prop_assert_eq!(restored.controller().export_state(), original.controller().export_state());
        prop_assert_eq!(restored.metrics(), original.metrics());
        let a = restored.cost_history();
        let b = original.cost_history();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
