//! End-to-end acceptance tests of the crash-safe controller service.
//!
//! The two headline properties of `postcard-runtime`:
//!
//! 1. **Crash-safety** — killing a run at an arbitrary slot and resuming
//!    from the latest checkpoint reproduces the uninterrupted run *bit for
//!    bit* (final bill, full cost history, metrics).
//! 2. **Fault-tolerance** — with the Postcard LP forced to time out, the
//!    fallback chain still commits a valid decision every slot, no file is
//!    lost to the fault, and every activation is visible in the metrics.
//!
//! Validity of every committed decision (capacity, ledger residuals, and
//! delivery-by-deadline) is enforced by the controller's debug assertions,
//! which are active in these test builds: any committed plan that missed a
//! deadline would abort the test.

use postcard::net::Network;
use postcard::runtime::{
    ArrivalSchedule, FaultPlan, Runtime, RuntimeConfig, RuntimeSnapshot, TierKind,
};
use postcard::sim::{trace_to_arrivals, Trace, UniformWorkload, WorkloadConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A complete network with ample capacity (feasible for every tier) and
/// seed-determined prices, plus a small multi-slot arrival schedule.
fn instance(seed: u64, num_slots: u64) -> (Network, ArrivalSchedule) {
    let mut rng = StdRng::seed_from_u64(seed);
    let network = Network::complete_with_prices(4, 500.0, |_, _| rng.gen_range(1.0..=10.0));
    let mut workload = UniformWorkload::new(
        WorkloadConfig {
            num_dcs: 4,
            files_per_slot: (1, 3),
            size_gb: (5.0, 20.0),
            deadline_slots: (1, 3),
        },
        seed ^ 0x00C0_FFEE,
    );
    let trace = Trace::generate(&mut workload, num_slots);
    (network, trace_to_arrivals(&trace))
}

fn ckpt_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("postcard-runtime-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn kill_at_any_slot_and_resume_matches_uninterrupted_run() {
    const SLOTS: u64 = 8;
    let faults = FaultPlan::none().force_timeout(3, TierKind::Postcard);
    let (network, arrivals) = instance(11, SLOTS);

    let mut full = Runtime::new(
        network.clone(),
        arrivals.clone(),
        faults.clone(),
        SLOTS,
        RuntimeConfig::default(),
    )
    .unwrap();
    full.run_to_end().unwrap();
    assert_eq!(full.cost_history().len() as u64, SLOTS);

    for kill_at in [1, 3, 5, 7] {
        let path = ckpt_path(&format!("kill_at_{kill_at}.json"));
        let config = RuntimeConfig {
            checkpoint_every: 1,
            checkpoint_path: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let mut victim =
            Runtime::new(network.clone(), arrivals.clone(), faults.clone(), SLOTS, config).unwrap();
        for _ in 0..kill_at {
            victim.run_slot().unwrap().expect("slot within the run");
        }
        drop(victim); // the crash: no graceful shutdown, no final checkpoint

        let mut resumed = Runtime::resume(&path).unwrap();
        assert_eq!(resumed.next_slot(), kill_at);
        resumed.run_to_end().unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(
            resumed.cost_history().len(),
            full.cost_history().len(),
            "kill at {kill_at}: missing slots"
        );
        for (slot, (a, b)) in resumed.cost_history().iter().zip(full.cost_history()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "kill at {kill_at}: cost diverged at slot {slot} ({a} vs {b})"
            );
        }
        assert_eq!(
            resumed.final_cost_per_slot().to_bits(),
            full.final_cost_per_slot().to_bits(),
            "kill at {kill_at}: final bill diverged"
        );
        assert_eq!(
            resumed.controller().export_state(),
            full.controller().export_state(),
            "kill at {kill_at}: controller state diverged"
        );
    }
}

#[test]
fn sparse_checkpoints_replay_the_gap_identically() {
    // Checkpoint every 3 slots, crash mid-interval: resume rewinds to the
    // last checkpoint and deterministically re-executes the lost slots.
    const SLOTS: u64 = 8;
    let (network, arrivals) = instance(23, SLOTS);
    // The reference run checkpoints on the same cadence (to its own file) so
    // even the `checkpoints_written` counter is comparable at the end.
    let full_path = ckpt_path("sparse_full.json");
    let full_config = RuntimeConfig {
        checkpoint_every: 3,
        checkpoint_path: Some(full_path.to_string_lossy().into_owned()),
        ..Default::default()
    };
    let mut full =
        Runtime::new(network.clone(), arrivals.clone(), FaultPlan::none(), SLOTS, full_config)
            .unwrap();
    full.run_to_end().unwrap();
    std::fs::remove_file(&full_path).ok();

    let path = ckpt_path("sparse.json");
    let config = RuntimeConfig {
        checkpoint_every: 3,
        checkpoint_path: Some(path.to_string_lossy().into_owned()),
        ..Default::default()
    };
    let mut victim = Runtime::new(network, arrivals, FaultPlan::none(), SLOTS, config).unwrap();
    for _ in 0..5 {
        victim.run_slot().unwrap();
    }
    drop(victim); // crash at slot 5; the last checkpoint covered slots 0..3

    let mut resumed = Runtime::resume(&path).unwrap();
    assert_eq!(resumed.next_slot(), 3, "resume rewinds to the checkpoint");
    resumed.run_to_end().unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(resumed.cost_history().len(), full.cost_history().len());
    for (a, b) in resumed.cost_history().iter().zip(full.cost_history()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(resumed.metrics(), full.metrics());
}

#[test]
fn forced_timeouts_never_miss_a_slot_and_are_all_recorded() {
    const SLOTS: u64 = 6;
    let (network, arrivals) = instance(7, SLOTS);
    assert!(
        (0..SLOTS).all(|s| !arrivals.batch(s).is_empty()),
        "the workload must release files every slot for this test"
    );
    let faults =
        FaultPlan::none().force_timeout(2, TierKind::Postcard).force_timeout(4, TierKind::Postcard);
    let mut rt = Runtime::new(network, arrivals, faults, SLOTS, RuntimeConfig::default()).unwrap();
    let outcomes = rt.run_to_end().unwrap();

    // Every slot committed a decision (validated by debug assertions,
    // including delivery by deadline), nothing was rejected or lost.
    assert_eq!(outcomes.len() as u64, SLOTS);
    assert!(outcomes.iter().all(|o| !o.degraded));
    let (_, rejected) = rt.controller().admission_counts();
    assert_eq!(rejected, 0, "ample capacity: the fault must not cost admissions");
    assert_eq!(rt.metrics().counter("files_lost_degraded"), 0);

    // The faulted slots ran on the fallback tier, the rest on Postcard.
    assert_eq!(outcomes[2].chosen_tier, Some(TierKind::FlowLp));
    assert_eq!(outcomes[4].chosen_tier, Some(TierKind::FlowLp));
    assert_eq!(outcomes[0].chosen_tier, Some(TierKind::Postcard));

    // Each activation is individually visible in the metrics export.
    assert_eq!(rt.metrics().counter("fallback_activations"), 2);
    assert_eq!(rt.metrics().counter("fallback_from_postcard"), 2);
    assert_eq!(rt.metrics().counter("tier_chosen_flow-lp"), 2);
    assert_eq!(rt.metrics().counter("slots_on_fallback_tier"), 2);
    let csv = rt.metrics().to_csv();
    assert!(csv.contains("counter,fallback_activations,0,2"), "{csv}");
    // Fallback solve latency was observed under its own tier label.
    assert!(rt.metrics().histogram("solve_latency_seconds_flow-lp").is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Snapshot → JSON → restore is lossless at any slot boundary: the
    /// restored service is indistinguishable from the one that never
    /// stopped, for arbitrary seeds and kill points.
    #[test]
    fn checkpoint_round_trip_restores_exact_state(seed in 0u64..1000, kill_at in 1u64..6) {
        const SLOTS: u64 = 6;
        let faults = FaultPlan::none().force_timeout(1, TierKind::Postcard);
        let (network, arrivals) = instance(seed, SLOTS);
        let mut original = Runtime::new(
            network,
            arrivals,
            faults,
            SLOTS,
            RuntimeConfig::default(),
        )
        .unwrap();
        for _ in 0..kill_at {
            original.run_slot().unwrap();
        }

        // Round-trip through the serialized form, not just Clone.
        let snap = RuntimeSnapshot::from_json(&original.snapshot().to_json()).unwrap();
        let mut restored = Runtime::from_snapshot(snap).unwrap();
        prop_assert_eq!(restored.next_slot(), kill_at);
        prop_assert_eq!(
            restored.controller().export_state(),
            original.controller().export_state()
        );

        original.run_to_end().unwrap();
        restored.run_to_end().unwrap();
        prop_assert_eq!(restored.controller().export_state(), original.controller().export_state());
        prop_assert_eq!(restored.metrics(), original.metrics());
        let a = restored.cost_history();
        let b = original.cost_history();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
