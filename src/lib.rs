//! # Postcard — minimizing costs on inter-datacenter traffic with store-and-forward
//!
//! A from-scratch Rust reproduction of *"Postcard: Minimizing Costs on
//! Inter-Datacenter Traffic with Store-and-Forward"* (Feng, Li & Li,
//! IEEE ICDCS 2012).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`lp`] — pure-Rust linear programming (modeling layer + revised simplex);
//! * [`net`] — network substrate: topology, time-expanded graphs, percentile
//!   charging, traffic ledger, transfer plans;
//! * [`flow`] — flow algorithms and the paper's storage-free flow-based
//!   baseline;
//! * [`core`] — the Postcard optimizer, online controller, and the Sec. VI
//!   extensions;
//! * [`sim`] — the time-slotted simulator, workloads, and statistics used to
//!   reproduce the paper's evaluation;
//! * [`runtime`] — the crash-safe controller service: solver fallback chain,
//!   checkpoint/resume, metrics registry, and fault injection
//!   (`postcard serve` / `postcard resume`);
//! * [`analyze`] — static analysis: pre-solve model checks (PA0xx) and the
//!   workspace source lint (PA1xx) behind one diagnostic engine
//!   (`postcard analyze`, `postcard serve --strict`).
//!
//! See the repository `README.md` for a quickstart, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use postcard_analyze as analyze;
pub use postcard_core as core;
pub use postcard_flow as flow;
pub use postcard_lp as lp;
pub use postcard_net as net;
pub use postcard_runtime as runtime;
pub use postcard_sim as sim;
